package serve

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/decoder"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sampler"
	"repro/internal/storage"
	"repro/internal/tensor"
)

// ErrClosed is returned for requests arriving after Close.
var ErrClosed = errors.New("serve: server closed")

// ErrOverloaded is returned for requests shed at a full dispatch queue;
// the HTTP layer maps it to 503 with a Retry-After header. Shedding at
// admission keeps the latency of accepted requests bounded under
// overload.
var ErrOverloaded = errors.New("serve: overloaded, request shed")

// ErrBadRequest marks client errors (wrong task, out-of-range IDs, empty
// batches); the HTTP layer maps it to 400.
var ErrBadRequest = errors.New("serve: bad request")

// PredictRequest asks for node-classification predictions. Seed, when
// nonzero, pins the neighborhood sampling seed — two requests with the
// same nodes and seed return byte-identical logits. With Seed zero the
// seed derives from the request content mixed with the server seed, so
// repeats of the same request are still deterministic.
type PredictRequest struct {
	Nodes []int32 `json:"nodes"`
	Seed  int64   `json:"seed,omitempty"`
}

// PredictResponse carries, per requested node, the argmax class and the
// full logit row.
type PredictResponse struct {
	Classes []int32     `json:"classes"`
	Logits  [][]float32 `json:"logits"`
}

// TopKRequest asks for the K highest-scoring tail entities for
// (Src, relation, ?) under the checkpoint's link-prediction model.
//
// The relation is named by either field below; both are pointers so the
// server can distinguish "relation 0" from "no relation named":
//
//   - Relation is the current field.
//   - Rel is the original single-relation-era field, kept so v1 clients
//     keep working unchanged.
//
// On a single-relation dataset an absent relation defaults to 0 (the v1
// request shape {"src":...,"k":...} still round-trips); on a
// multi-relation dataset it is a 400 (ErrBadRequest) — there is no safe
// default to score against. Naming both fields with different values is
// likewise a 400.
type TopKRequest struct {
	Src      int32  `json:"src"`
	Rel      *int32 `json:"rel,omitempty"`
	Relation *int32 `json:"relation,omitempty"`
	K        int    `json:"k"`
	// Filter removes known true tails — entities d with a training edge
	// (src, relation, d) — from the candidates, the serving analog of the
	// filtered ranking protocol: returned tails are novel predictions.
	Filter bool  `json:"filter,omitempty"`
	Seed   int64 `json:"seed,omitempty"`
}

// TopKResponse lists tail entities in descending score order (ties broken
// by ascending entity ID). Relation echoes the resolved relation and
// Filtered whether known true tails were removed.
type TopKResponse struct {
	Nodes    []int32   `json:"nodes"`
	Scores   []float32 `json:"scores"`
	Relation int32     `json:"relation"`
	Filtered bool      `json:"filtered,omitempty"`
}

// call is one enqueued request awaiting its micro-batch. rel is the
// resolved relation of a top-k call (Relation/Rel precedence and
// single-relation defaulting applied at admission).
type call struct {
	pred *PredictRequest
	topk *TopKRequest
	rel  int32
	resp chan callResult
	enq  time.Time
}

type callResult struct {
	pred *PredictResponse
	topk *TopKResponse
	err  error
	wait time.Duration // time in queue, stamped by the dispatcher
}

// Server aggregates concurrent Predict/TopK calls through a bounded
// queue into micro-batches, each served against one pinned Snapshot. All
// exported methods are safe for concurrent use; the model forward runs
// on a single dispatcher goroutine, so batching — not goroutine fan-out
// — is the concurrency mechanism, mirroring a single-accelerator
// deployment.
type Server struct {
	ctx  *Context
	cfg  Config
	snap atomic.Pointer[Snapshot]

	reqs chan *call
	quit chan struct{}
	wg   sync.WaitGroup
	once sync.Once

	stats                   *stats
	reloads, reloadFailures *obs.Counter

	// Degraded-health tracking: reloadErr latches the last failed
	// reload's message (cleared by the next success); satConsec counts
	// consecutive dispatches that drained a full batch while the queue
	// stayed full; shedConsec counts requests shed since the last
	// successful admission (sustained shedding degrades /healthz).
	reloadErr  atomic.Pointer[string]
	satConsec  atomic.Int64
	shedConsec atomic.Int64

	tracer *obs.Tracer
}

// saturationThreshold is how many consecutive saturated dispatches
// (full micro-batch taken, queue still full) flip /healthz to
// degraded.
const saturationThreshold = 8

// shedThreshold is how many consecutive shed requests (none admitted in
// between) flip /healthz to degraded: brief bursts shed a few requests
// without alarming, sustained overload surfaces.
const shedThreshold = 8

// New starts a server over ctx serving snap.
func New(ctx *Context, snap *Snapshot, cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := obs.NewRegistry()
	s := &Server{
		ctx:    ctx,
		cfg:    cfg,
		stats:  newStats(reg),
		reqs:   make(chan *call, cfg.QueueCap),
		quit:   make(chan struct{}),
		tracer: cfg.Tracer,
	}
	s.reloads = reg.Counter("serve_reloads_total", "Successful hot checkpoint reloads.")
	s.reloadFailures = reg.Counter("serve_reload_failures_total", "Failed hot checkpoint reloads.")
	reg.GaugeFunc("serve_queue_depth", "Requests waiting in the dispatch queue.",
		func() float64 { return float64(len(s.reqs)) })
	reg.GaugeFunc("serve_queue_capacity", "Dispatch queue capacity.",
		func() float64 { return float64(cap(s.reqs)) })
	reg.GaugeFunc("serve_healthy", "1 when /healthz reports ok, 0 when degraded.",
		func() float64 {
			if ok, _ := s.Health(); ok {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("serve_snapshot_loaded_timestamp_seconds", "Unix time the serving snapshot was loaded.",
		func() float64 { return float64(s.snap.Load().LoadedAt.Unix()) })
	reg.GaugeFunc("serve_snapshot_epoch", "Training epoch recorded in the serving checkpoint.",
		func() float64 { return float64(s.snap.Load().File.Epoch) })
	if ctx.featStats != nil {
		storage.RegisterStats(reg, "features", ctx.featStats)
	}
	s.snap.Store(snap)
	s.wg.Add(1)
	go s.dispatch()
	return s
}

// Metrics returns the server's metrics registry (serve counters and
// latency histograms, snapshot gauges, and — for disk-backed feature
// stores — storage IO counters), for Prometheus exposition.
func (s *Server) Metrics() *obs.Registry { return s.stats.reg }

// Health reports whether the server is healthy; when degraded, reason
// names the cause (last reload failed, or the dispatch queue has been
// saturated for saturationThreshold consecutive micro-batches).
func (s *Server) Health() (ok bool, reason string) {
	if msg := s.reloadErr.Load(); msg != nil {
		return false, "last reload failed: " + *msg
	}
	if n := s.satConsec.Load(); n >= saturationThreshold {
		return false, fmt.Sprintf("queue saturated for %d consecutive dispatches", n)
	}
	if n := s.shedConsec.Load(); n >= shedThreshold {
		return false, fmt.Sprintf("shedding load: %d consecutive requests rejected at a full queue", n)
	}
	return true, ""
}

// noteSaturation updates the consecutive-saturated-dispatch counter.
func (s *Server) noteSaturation(saturated bool) {
	if saturated {
		s.satConsec.Add(1)
	} else {
		s.satConsec.Store(0)
	}
}

// Snapshot returns the currently served snapshot.
func (s *Server) Snapshot() *Snapshot { return s.snap.Load() }

// reloadRetries/reloadBackoff bound Reload's retry loop on transient IO
// errors: 4 retries starting at 5ms doubling (~75ms worst case), long
// enough to ride out a checkpoint mid-rename or an injected blip, short
// enough that a SIGHUP-triggered reload stays prompt.
const (
	reloadRetries = 4
	reloadBackoff = 5 * time.Millisecond
)

// Reload loads the checkpoint at path and atomically swaps it in.
// In-flight micro-batches finish on the snapshot they pinned; requests
// batched after the swap see the new one. Transient IO errors are
// retried with bounded backoff; on (persistent) error the old snapshot
// keeps serving and /healthz degrades until a reload succeeds.
func (s *Server) Reload(path string) (*Snapshot, error) {
	var snap *Snapshot
	var err error
	for attempt := 0; ; attempt++ {
		snap, err = Load(s.ctx, path, s.cfg)
		if err == nil {
			break
		}
		if !fault.IsTransient(err) || attempt >= reloadRetries {
			msg := err.Error()
			s.reloadErr.Store(&msg)
			s.reloadFailures.Inc()
			return nil, err
		}
		time.Sleep(reloadBackoff << attempt)
	}
	s.snap.Store(snap)
	s.reloadErr.Store(nil)
	s.reloads.Inc()
	return snap, nil
}

// Close stops the dispatcher. Queued requests fail with ErrClosed.
func (s *Server) Close() {
	s.once.Do(func() { close(s.quit) })
	s.wg.Wait()
}

// Predict classifies req.Nodes, blocking until the micro-batch holding
// the request completes (or ctx is done).
func (s *Server) Predict(ctx context.Context, req *PredictRequest) (*PredictResponse, error) {
	if t := s.ctx.Task(); t != "nc" {
		return nil, fmt.Errorf("%w: predict serves node classification; dataset task is %q", ErrBadRequest, t)
	}
	if len(req.Nodes) == 0 {
		return nil, fmt.Errorf("%w: empty nodes", ErrBadRequest)
	}
	for _, id := range req.Nodes {
		if err := s.ctx.validNode(id); err != nil {
			return nil, err
		}
	}
	r, err := s.do(ctx, &call{pred: req})
	if err != nil {
		return nil, err
	}
	return r.pred, nil
}

// TopK scores (Src, relation, ?) against every entity and returns the K
// best tails, blocking until the micro-batch holding the request
// completes. See TopKRequest for how the relation is resolved.
func (s *Server) TopK(ctx context.Context, req *TopKRequest) (*TopKResponse, error) {
	if t := s.ctx.Task(); t != "lp" {
		return nil, fmt.Errorf("%w: topk serves link prediction; dataset task is %q", ErrBadRequest, t)
	}
	if err := s.ctx.validNode(req.Src); err != nil {
		return nil, err
	}
	rel, err := s.resolveRel(req)
	if err != nil {
		return nil, err
	}
	if req.K <= 0 {
		return nil, fmt.Errorf("%w: k must be positive", ErrBadRequest)
	}
	r, err := s.do(ctx, &call{topk: req, rel: rel})
	if err != nil {
		return nil, err
	}
	return r.topk, nil
}

// resolveRel applies the TopKRequest relation contract: Relation and Rel
// must agree when both are named; an absent relation defaults to 0 only
// on single-relation datasets; the result is range-checked against the
// dataset.
func (s *Server) resolveRel(req *TopKRequest) (int32, error) {
	rels := max(s.ctx.DS.Man.NumRels, 1)
	var rel int32
	switch {
	case req.Relation != nil && req.Rel != nil && *req.Relation != *req.Rel:
		return 0, fmt.Errorf("%w: relation %d conflicts with rel %d (name the relation once)",
			ErrBadRequest, *req.Relation, *req.Rel)
	case req.Relation != nil:
		rel = *req.Relation
	case req.Rel != nil:
		rel = *req.Rel
	case rels > 1:
		return 0, fmt.Errorf("%w: dataset has %d relation types; the request must name one (\"relation\")",
			ErrBadRequest, rels)
	}
	if rel < 0 || int(rel) >= rels {
		return 0, fmt.Errorf("%w: relation %d out of range [0,%d)", ErrBadRequest, rel, rels)
	}
	return rel, nil
}

// do admits a call (shedding immediately when the queue is full) and
// waits for its result under the configured per-request deadline.
func (s *Server) do(ctx context.Context, c *call) (callResult, error) {
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}
	c.resp = make(chan callResult, 1)
	c.enq = time.Now()
	select {
	case s.reqs <- c:
		s.shedConsec.Store(0)
	case <-s.quit:
		return callResult{}, ErrClosed
	default:
		// Full queue: fail fast rather than queue without bound, keeping
		// the latency of admitted requests bounded under overload.
		s.stats.shed.Inc()
		s.shedConsec.Add(1)
		return callResult{}, ErrOverloaded
	}
	select {
	case r := <-c.resp:
		s.stats.recordCall(r.wait, time.Since(c.enq), r.err != nil)
		return r, r.err
	case <-ctx.Done():
		// The dispatcher still completes the call into the buffered
		// channel; only this waiter gives up.
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			s.stats.deadlines.Inc()
		}
		return callResult{}, ctx.Err()
	}
}

// dispatch is the single batching loop: block for the first request,
// collect co-batched ones until MaxBatch or MaxWait, pin one snapshot,
// run the batch.
func (s *Server) dispatch() {
	defer s.wg.Done()
	for {
		var first *call
		select {
		case first = <-s.reqs:
		case <-s.quit:
			s.drain()
			return
		}
		batch := append(make([]*call, 0, s.cfg.MaxBatch), first)
		timer := time.NewTimer(s.cfg.MaxWait)
	collect:
		for len(batch) < s.cfg.MaxBatch {
			select {
			case c := <-s.reqs:
				batch = append(batch, c)
			case <-timer.C:
				break collect
			case <-s.quit:
				break collect
			}
		}
		timer.Stop()
		s.noteSaturation(len(batch) >= s.cfg.MaxBatch && len(s.reqs) >= cap(s.reqs))
		s.runBatch(batch)
	}
}

// drain fails every still-queued call after Close.
func (s *Server) drain() {
	for {
		select {
		case c := <-s.reqs:
			c.resp <- callResult{err: ErrClosed}
		default:
			return
		}
	}
}

// runBatch serves one micro-batch against one pinned snapshot. Predict
// and top-k calls in the same batch become one merged encode launch and
// one fused scoring launch respectively.
//
// A panic anywhere in the batch (a malformed snapshot, a kernel bug, an
// injected chaos hook) is contained here: the batch's requests fail
// with an error, serve_panics_recovered_total increments, and the
// dispatcher loop — and every other request — keeps running. Without
// this, one poisoned request would kill the process.
func (s *Server) runBatch(batch []*call) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		s.stats.panics.Inc()
		err := fmt.Errorf("serve: panic recovered while serving batch: %v", r)
		for _, c := range batch {
			// Non-blocking: calls the batch already answered before the
			// panic keep their response.
			select {
			case c.resp <- callResult{err: err}:
			default:
			}
		}
	}()
	if h := s.cfg.Hooks; h != nil && h.BeforeBatch != nil {
		h.BeforeBatch(len(batch))
	}
	snap := s.snap.Load()
	started := time.Now()
	wait := make(map[*call]time.Duration, len(batch))
	var preds, topks []*call
	for _, c := range batch {
		wait[c] = started.Sub(c.enq)
		if c.pred != nil {
			preds = append(preds, c)
		} else {
			topks = append(topks, c)
		}
	}
	var sampleT, encodeT, decodeT time.Duration
	if len(preds) > 0 {
		st, et, dt := s.runPredict(snap, preds, wait)
		sampleT, encodeT, decodeT = sampleT+st, encodeT+et, decodeT+dt
	}
	if len(topks) > 0 {
		st, et, dt := s.runTopK(snap, topks, wait)
		sampleT, encodeT, decodeT = sampleT+st, encodeT+et, decodeT+dt
	}
	s.stats.recordBatch(len(batch), sampleT, encodeT, decodeT)
	if s.tracer != nil {
		for _, c := range batch {
			s.tracer.Span("serve", "queue_wait", obs.TIDServe, c.enq, wait[c])
		}
		s.tracer.Span("serve", "sample", obs.TIDServe, started, sampleT)
		s.tracer.Span("serve", "encode", obs.TIDServe, started.Add(sampleT), encodeT)
		s.tracer.Span("serve", "decode", obs.TIDServe, started.Add(sampleT+encodeT), decodeT)
	}
}

// fail completes every call in group with err.
func fail(group []*call, wait map[*call]time.Duration, err error) {
	for _, c := range group {
		c.resp <- callResult{err: err, wait: wait[c]}
	}
}

// runPredict serves the node-classification half of a micro-batch: each
// request's (deduplicated) targets are sampled with that request's own
// seed, the per-request DENSE blocks are concatenated into one merged
// structure, and a single gather + encoder forward produces every
// request's logits. Per-request sampling seeds plus row-parallel kernels
// make each request's rows independent of its co-batch, so results equal
// the sequential single-request run bitwise.
func (s *Server) runPredict(snap *Snapshot, group []*call, wait map[*call]time.Duration) (sampleT, encodeT, decodeT time.Duration) {
	t0 := time.Now()
	type predPlan struct {
		uniq []int32 // first-occurrence order
		idx  []int32 // request position -> row within uniq
	}
	plans := make([]predPlan, len(group))
	blocks := make([]*sampler.DENSE, len(group))
	for i, c := range group {
		req := c.pred
		p := predPlan{idx: make([]int32, len(req.Nodes))}
		seen := make(map[int32]int32, len(req.Nodes))
		for j, id := range req.Nodes {
			row, ok := seen[id]
			if !ok {
				row = int32(len(p.uniq))
				seen[id] = row
				p.uniq = append(p.uniq, id)
			}
			p.idx[j] = row
		}
		plans[i] = p
		blocks[i] = snap.fwd.SampleSeeded(s.requestSeed(c), p.uniq)
	}
	merged := mergeDense(blocks)
	t1 := time.Now()
	sampleT = t1.Sub(t0)

	out, err := snap.fwd.EncodeDense(snap.Store, merged)
	if err != nil {
		fail(group, wait, err)
		for _, b := range blocks {
			snap.fwd.Recycle(b)
		}
		return sampleT, time.Since(t1), 0
	}
	t2 := time.Now()
	encodeT = t2.Sub(t1)

	logits := out.Value
	base := 0
	for i, c := range group {
		p := plans[i]
		resp := &PredictResponse{
			Classes: make([]int32, len(p.idx)),
			Logits:  make([][]float32, len(p.idx)),
		}
		for j, row := range p.idx {
			src := logits.Row(base + int(row))
			resp.Logits[j] = append([]float32(nil), src...)
			resp.Classes[j] = argmax(src)
		}
		base += len(p.uniq)
		c.resp <- callResult{pred: resp, wait: wait[c]}
	}
	// Recycle only after every response row was copied out: the blocks'
	// arrays (and, single-block case, the merged view of them) go back
	// to the sampler pool here.
	for _, b := range blocks {
		snap.fwd.Recycle(b)
	}
	return sampleT, encodeT, time.Since(t2)
}

// runTopK serves the link-prediction half of a micro-batch: fold each
// request's (source, relation) into the decoder's query vector (encoding
// sources through the GNN when the model has one), then score all
// entities for every request with a single fused gather-matmul against
// the snapshot's precomputed entity table — exactly the kernel
// evaluation's ranking protocol uses, one launch per micro-batch instead
// of one per request. Decoders with a norm completion (TransE) finish
// scores against the snapshot's cached entity norms.
func (s *Server) runTopK(snap *Snapshot, group []*call, wait map[*call]time.Duration) (sampleT, encodeT, decodeT time.Duration) {
	t0 := time.Now()
	dim := snap.Meta.Dim
	srcRows := tensor.New(len(group), dim)
	if snap.Encoder == nil {
		for i, c := range group {
			copy(srcRows.Data[i*dim:(i+1)*dim], snap.Table.Row(int(c.topk.Src)))
		}
	} else {
		blocks := make([]*sampler.DENSE, len(group))
		for i, c := range group {
			blocks[i] = snap.fwd.SampleSeeded(s.requestSeed(c), []int32{c.topk.Src})
		}
		merged := mergeDense(blocks)
		out, err := snap.fwd.EncodeDense(snap.Store, merged)
		if err != nil {
			fail(group, wait, err)
			for _, b := range blocks {
				snap.fwd.Recycle(b)
			}
			return time.Since(t0), 0, 0
		}
		// One target per block, so encoded row i belongs to call i.
		copy(srcRows.Data, out.Value.Data[:len(group)*dim])
		for _, b := range blocks {
			snap.fwd.Recycle(b)
		}
	}
	// Queries live in their own tensor: the fold reads source components
	// in decoder-specific order (ComplEx reads both halves per output
	// element), so it must not write over its input.
	queries := tensor.New(len(group), dim)
	var qn []float32
	if snap.Decoder.Norms() {
		qn = make([]float32, len(group))
	}
	for i, c := range group {
		snap.Decoder.TailQueryInto(queries.Row(i), srcRows.Row(i), snap.RelTable.Row(int(c.rel)))
		if qn != nil {
			qn[i] = decoder.SqNorm(queries.Row(i))
		}
	}
	t1 := time.Now()
	sampleT = t1.Sub(t0)

	var scores *tensor.Tensor
	if snap.EncQ != nil {
		scores = snap.cmp.GatherMatMulTBDequant(queries, snap.EncQ, s.ctx.allNodes)
	} else {
		scores = snap.cmp.GatherMatMulTB(queries, snap.EncTable, s.ctx.allNodes)
	}
	decoder.FinishScores(snap.Decoder, scores, qn, snap.EncNorms, s.ctx.allNodes)
	t2 := time.Now()
	encodeT = t2.Sub(t1)

	for i, c := range group {
		row := scores.Row(i)
		k := min(c.topk.K, len(row))
		var ids []int32
		if c.topk.Filter {
			known := s.ctx.knownTails(c.topk.Src, c.rel)
			ids = decoder.TopKSkip(row, k, func(id int32) bool {
				_, skip := known[id]
				return skip
			})
		} else {
			ids = decoder.TopK(row, k)
		}
		resp := &TopKResponse{
			Nodes: ids, Scores: make([]float32, len(ids)),
			Relation: c.rel, Filtered: c.topk.Filter,
		}
		for j, id := range ids {
			resp.Scores[j] = row[id]
		}
		c.resp <- callResult{topk: resp, wait: wait[c]}
	}
	return sampleT, encodeT, time.Since(t2)
}

// requestSeed derives a call's sampling seed: an explicit request seed
// wins; otherwise the seed is a content hash mixed with the server seed,
// so identical requests sample identical neighborhoods no matter when
// they arrive or what they are batched with.
func (s *Server) requestSeed(c *call) int64 {
	if c.pred != nil && c.pred.Seed != 0 {
		return c.pred.Seed
	}
	if c.topk != nil && c.topk.Seed != 0 {
		return c.topk.Seed
	}
	h := fnv.New64a()
	var b [8]byte
	if c.pred != nil {
		for _, id := range c.pred.Nodes {
			binary.LittleEndian.PutUint32(b[:4], uint32(id))
			h.Write(b[:4])
		}
	} else {
		// Hash the resolved relation: a v1 request naming rel R and a
		// current one naming relation R derive the same seed, so either
		// form samples the same neighborhood.
		binary.LittleEndian.PutUint32(b[:4], uint32(c.topk.Src))
		h.Write(b[:4])
		binary.LittleEndian.PutUint32(b[:4], uint32(c.rel))
		h.Write(b[:4])
	}
	return int64(h.Sum64()) ^ s.cfg.Seed
}

// argmax returns the index of the row maximum (first winner on ties).
func argmax(row []float32) int32 {
	best := 0
	for j := 1; j < len(row); j++ {
		if row[j] > row[best] {
			best = j
		}
	}
	return int32(best)
}

// mergeDense concatenates per-request DENSE blocks into one structure
// with the same invariants, delta group by delta group: merged group g
// is [blocks[0].Δg, blocks[1].Δg, ...], neighbor segments follow merged
// node order, and each block's ReprMap is remapped through its
// local-row → merged-row table. Forward output rows land contiguous per
// block in block order. Node IDs may repeat across blocks (two requests
// sampling the same node) — harmless to the gather/segment kernels, and
// exactly why the merged structure must never go through
// DENSE.Validate, which enforces training-batch uniqueness.
func mergeDense(blocks []*sampler.DENSE) *sampler.DENSE {
	if len(blocks) == 1 {
		return blocks[0]
	}
	k := blocks[0].Layers
	numGroups := k + 1
	var totalNodes, totalNbrs int
	for _, b := range blocks {
		totalNodes += len(b.NodeIDs)
		totalNbrs += len(b.Nbrs)
	}
	m := &sampler.DENSE{
		NodeIDOffsets: make([]int32, numGroups+1),
		NodeIDs:       make([]int32, 0, totalNodes),
		Nbrs:          make([]int32, 0, totalNbrs),
		ReprMap:       make([]int32, 0, totalNbrs),
		Layers:        k,
	}
	rowMaps := make([][]int32, len(blocks))
	for bi, b := range blocks {
		rowMaps[bi] = make([]int32, len(b.NodeIDs))
	}
	for g := 0; g < numGroups; g++ {
		m.NodeIDOffsets[g] = int32(len(m.NodeIDs))
		for bi, b := range blocks {
			for r := b.NodeIDOffsets[g]; r < b.NodeIDOffsets[g+1]; r++ {
				rowMaps[bi][r] = int32(len(m.NodeIDs))
				m.NodeIDs = append(m.NodeIDs, b.NodeIDs[r])
			}
		}
	}
	m.NodeIDOffsets[numGroups] = int32(len(m.NodeIDs))

	m.NbrOffsets = make([]int32, 0, len(m.NodeIDs)-int(m.NodeIDOffsets[1]))
	for g := 1; g < numGroups; g++ {
		for bi, b := range blocks {
			start := b.OutputStart()
			for r := int(b.NodeIDOffsets[g]); r < int(b.NodeIDOffsets[g+1]); r++ {
				segIdx := r - start
				lo := int(b.NbrOffsets[segIdx])
				hi := len(b.Nbrs)
				if segIdx+1 < len(b.NbrOffsets) {
					hi = int(b.NbrOffsets[segIdx+1])
				}
				m.NbrOffsets = append(m.NbrOffsets, int32(len(m.Nbrs)))
				m.Nbrs = append(m.Nbrs, b.Nbrs[lo:hi]...)
				for _, rm := range b.ReprMap[lo:hi] {
					m.ReprMap = append(m.ReprMap, rowMaps[bi][rm])
				}
			}
		}
	}
	return m
}
