package serve_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/serve"
)

// TestHTTPSurface drives the JSON endpoints end to end: predict, reload,
// healthz, statz, and the error mapping for bad requests.
func TestHTTPSurface(t *testing.T) {
	dir := prepNC(t, 2)
	ckptPath := train(t, dir, ncOpts, 1)[0]
	srv := startServer(t, dir, ckptPath, serve.Config{})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	post := func(path string, body any) *http.Response {
		t.Helper()
		b, _ := json.Marshal(body)
		resp, err := http.Post(hs.URL+path, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	resp := post("/v1/predict", serve.PredictRequest{Nodes: []int32{1, 2, 3}, Seed: 7})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: status %d", resp.StatusCode)
	}
	var pr serve.PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(pr.Classes) != 3 || len(pr.Logits) != 3 {
		t.Fatalf("predict: %d classes, %d logit rows, want 3", len(pr.Classes), len(pr.Logits))
	}

	// Wrong task and out-of-range IDs are client errors.
	for _, bad := range []any{
		serve.TopKRequest{Src: 1, Rel: relp(0), K: 5},   // lp endpoint on an nc dataset
		serve.PredictRequest{Nodes: []int32{}},          // empty batch
		serve.PredictRequest{Nodes: []int32{1_000_000}}, // out of range
	} {
		path := "/v1/predict"
		if _, ok := bad.(serve.TopKRequest); ok {
			path = "/v1/topk"
		}
		resp := post(path, bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%v: status %d, want 400", bad, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// Reload with an empty body re-reads the current checkpoint path.
	resp = post("/reload", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	for _, probe := range []string{"/healthz", "/statz"} {
		resp, err := http.Get(hs.URL + probe)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", probe, resp.StatusCode)
		}
		resp.Body.Close()
	}
	var statz serve.Statz
	resp, err := http.Get(hs.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&statz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if statz.Requests == 0 || statz.Batches == 0 {
		t.Fatalf("statz shows no traffic: %+v", statz)
	}
	if statz.Checkpoint != ckptPath {
		t.Fatalf("statz checkpoint %q, want %q", statz.Checkpoint, ckptPath)
	}
}

// GET /metrics serves Prometheus text covering serve, storage, and
// snapshot metric families, and a failed reload flips /healthz to 503
// with a JSON reason until the next successful reload.
func TestHTTPMetricsAndDegradedHealth(t *testing.T) {
	dir := prepNC(t, 2)
	ckptPath := train(t, dir, ncOpts, 1)[0]
	srv := startServer(t, dir, ckptPath, serve.Config{})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	resp := mustPost(t, hs.URL+"/v1/predict", serve.PredictRequest{Nodes: []int32{1, 2}, Seed: 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"serve_requests_total",
		"serve_batches_total",
		`serve_latency_milliseconds_bucket{stage="total",le="+Inf"}`,
		"serve_snapshot_epoch",
		"serve_snapshot_loaded_timestamp_seconds",
		"serve_healthy 1",
		`storage_bytes_read_total{store="features"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q:\n%s", want, out)
		}
	}

	// A reload pointing at a nonexistent checkpoint fails, keeps the
	// old snapshot serving, and degrades /healthz.
	resp = mustPost(t, hs.URL+"/reload", map[string]string{"checkpoint": dir + "/missing.ckpt"})
	if resp.StatusCode == http.StatusOK {
		t.Fatal("reload of a missing checkpoint should fail")
	}
	resp.Body.Close()

	resp, err = http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/healthz after failed reload: status %d, want 503", resp.StatusCode)
	}
	var health struct {
		Status string `json:"status"`
		Reason string `json:"reason"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "degraded" || health.Reason == "" {
		t.Fatalf("degraded body = %+v", health)
	}

	// Requests still serve on the old snapshot while degraded.
	resp = mustPost(t, hs.URL+"/v1/predict", serve.PredictRequest{Nodes: []int32{1}, Seed: 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict while degraded: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// A successful reload restores health.
	resp = mustPost(t, hs.URL+"/reload", map[string]string{"checkpoint": ckptPath})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp, err = http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz after recovery: status %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
}

func mustPost(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}
