package serve_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/serve"
)

// TestHTTPSurface drives the JSON endpoints end to end: predict, reload,
// healthz, statz, and the error mapping for bad requests.
func TestHTTPSurface(t *testing.T) {
	dir := prepNC(t, 2)
	ckptPath := train(t, dir, ncOpts, 1)[0]
	srv := startServer(t, dir, ckptPath, serve.Config{})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	post := func(path string, body any) *http.Response {
		t.Helper()
		b, _ := json.Marshal(body)
		resp, err := http.Post(hs.URL+path, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	resp := post("/v1/predict", serve.PredictRequest{Nodes: []int32{1, 2, 3}, Seed: 7})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: status %d", resp.StatusCode)
	}
	var pr serve.PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(pr.Classes) != 3 || len(pr.Logits) != 3 {
		t.Fatalf("predict: %d classes, %d logit rows, want 3", len(pr.Classes), len(pr.Logits))
	}

	// Wrong task and out-of-range IDs are client errors.
	for _, bad := range []any{
		serve.TopKRequest{Src: 1, Rel: 0, K: 5},         // lp endpoint on an nc dataset
		serve.PredictRequest{Nodes: []int32{}},          // empty batch
		serve.PredictRequest{Nodes: []int32{1_000_000}}, // out of range
	} {
		path := "/v1/predict"
		if _, ok := bad.(serve.TopKRequest); ok {
			path = "/v1/topk"
		}
		resp := post(path, bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%v: status %d, want 400", bad, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// Reload with an empty body re-reads the current checkpoint path.
	resp = post("/reload", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	for _, probe := range []string{"/healthz", "/statz"} {
		resp, err := http.Get(hs.URL + probe)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", probe, resp.StatusCode)
		}
		resp.Body.Close()
	}
	var statz serve.Statz
	resp, err := http.Get(hs.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&statz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if statz.Requests == 0 || statz.Batches == 0 {
		t.Fatalf("statz shows no traffic: %+v", statz)
	}
	if statz.Checkpoint != ckptPath {
		t.Fatalf("statz checkpoint %q, want %q", statz.Checkpoint, ckptPath)
	}
}
