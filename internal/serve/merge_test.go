package serve

import (
	"math/rand"
	"testing"

	"repro/internal/encode"
	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/sampler"
	"repro/internal/tensor"
)

// TestMergeDenseMatchesPerBlockForward is the micro-batching keystone:
// encoding a merged multi-request DENSE must reproduce each request's
// individual forward bitwise, with output rows contiguous per block in
// block order — including when requests' neighborhoods overlap (the
// merged structure carries duplicate node IDs by design).
func TestMergeDenseMatchesPerBlockForward(t *testing.T) {
	const n = 40
	rng := rand.New(rand.NewSource(7))
	var edges []graph.Edge
	for i := 0; i < 160; i++ {
		edges = append(edges, graph.Edge{Src: int32(rng.Intn(n)), Dst: int32(rng.Intn(n))})
	}
	adj := graph.BuildAdjacency(n, edges)

	feat := tensor.New(n, 5)
	for i := range feat.Data {
		feat.Data[i] = rng.Float32()
	}
	store := encode.TensorStore{T: feat}

	for _, fanouts := range [][]int{{3}, {3, 2}} {
		ps := nn.NewParamSet()
		enc := gnn.BuildSage(ps, append([]int{5, 8, 6}[:len(fanouts)], 4), gnn.Mean, rng)
		fwd := encode.New(encode.Config{
			Encoder: enc, Params: ps, Fanouts: fanouts, Dirs: graph.Both, Workers: 1,
		}, adj, 1)

		targets := [][]int32{{1, 2, 3}, {4, 5}, {2, 7, 9, 1}} // overlaps blocks 0 and 2
		seeds := []int64{101, 202, 303}

		// Individual forwards first: one sample+encode per block.
		want := make([][]float32, len(targets))
		for i := range targets {
			d := fwd.SampleSeeded(seeds[i], targets[i])
			out, err := fwd.EncodeDense(store, d)
			if err != nil {
				t.Fatal(err)
			}
			want[i] = append([]float32(nil), out.Value.Data[:len(targets[i])*out.Value.Cols]...)
			fwd.Recycle(d)
		}

		// Same samples again, merged into one structure, one forward.
		blocks := make([]*sampler.DENSE, len(targets))
		for i := range targets {
			blocks[i] = fwd.SampleSeeded(seeds[i], targets[i])
		}
		out, err := fwd.EncodeDense(store, mergeDense(blocks))
		if err != nil {
			t.Fatal(err)
		}
		cols := out.Value.Cols
		base := 0
		for i := range targets {
			got := out.Value.Data[base*cols : (base+len(targets[i]))*cols]
			for j := range got {
				if got[j] != want[i][j] {
					t.Fatalf("fanouts %v: block %d differs at flat index %d: merged %v, individual %v",
						fanouts, i, j, got[j], want[i][j])
				}
			}
			base += len(targets[i])
		}
	}
}
