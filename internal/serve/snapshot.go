package serve

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/ckpt"
	"repro/internal/decoder"
	"repro/internal/encode"
	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Snapshot is one loaded checkpoint, immutable once built: the rebuilt
// model, the base-representation store, and — for link prediction — the
// precomputed encoded table every top-k query scores against. The server
// holds the current Snapshot behind an atomic pointer; Reload builds a
// new one and swaps it in, so in-flight micro-batches keep the one they
// pinned.
type Snapshot struct {
	Path     string
	LoadedAt time.Time
	File     *ckpt.File
	Meta     ckpt.ModelMeta

	Params  *nn.ParamSet
	Encoder *gnn.Encoder    // nil for decoder-only models
	Decoder decoder.Decoder // nil for NC; kind from the checkpoint metadata

	// Store is what encode gathers base representations from: the
	// context's feature store for NC, the checkpoint's embedding table
	// for LP.
	Store encode.Store

	// Table is the LP learnable embedding table from the checkpoint
	// (nil for NC).
	Table *tensor.Tensor
	// EncTable is the encoded entity table LP top-k scores tails
	// against: Table pushed through the encoder once at load (equal to
	// Table itself for decoder-only models). Nil for NC, and nil when
	// Config.QuantizeTable moved the table into EncQ.
	EncTable *tensor.Tensor
	// EncQ is the quantized encoding table when Config.QuantizeTable is
	// set: top-k scoring runs the fused dequantizing kernel against it,
	// halving (fp16) or quartering (int8) the table's resident memory
	// (for encoder models, the dominant per-snapshot allocation).
	EncQ *tensor.QTable
	// RelTable is the decoder's relation table (nil for NC).
	RelTable *tensor.Tensor
	// EncNorms caches the squared L2 norm of every EncTable/EncQ row for
	// decoders whose score needs a norm completion (TransE). Nil when the
	// decoder scores by dot product alone.
	EncNorms []float32

	// Warning is a non-fatal provenance note (checkpoint trained on a
	// different dataset UUID than the one being served).
	Warning string

	// fwd is the dispatcher's forward-only encode state. Snapshots are
	// used by one dispatcher at a time; fwd is not safe for concurrent
	// use.
	fwd *encode.Forward
	cmp *tensor.Compute
}

// encoderDims mirrors the training-side layer sizing: input dim, then
// hidden for the middle layers, then the output dim.
func encoderDims(in, hidden, out, layers int) []int {
	dims := []int{in}
	for i := 0; i < layers-1; i++ {
		dims = append(dims, hidden)
	}
	return append(dims, out)
}

// Load reads the checkpoint at path, validates it against the serving
// context's dataset — returning an error matching ckpt.ErrMismatch that
// names the offending field, instead of letting the mismatch surface as
// a kernel shape panic mid-forward — and rebuilds the forward-only
// model.
func Load(ctx *Context, path string, cfg Config) (*Snapshot, error) {
	cfg = cfg.withDefaults()
	cp, err := ckpt.Read(path)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	man := ctx.DS.Man
	if cp.Version != ckpt.Version {
		return nil, ckpt.Mismatch("version", "checkpoint version %d, want %d", cp.Version, ckpt.Version)
	}
	if cp.Task != man.Task {
		return nil, ckpt.Mismatch("task", "checkpoint task %q, dataset task %q", cp.Task, man.Task)
	}
	if cp.Model.Kind == "" {
		return nil, ckpt.Mismatch("model", "checkpoint predates model metadata; re-save it with this version to serve it")
	}
	meta := cp.Model
	if cp.TableRows != man.NumNodes {
		return nil, ckpt.Mismatch("nodes", "checkpoint trained on %d nodes, dataset has %d", cp.TableRows, man.NumNodes)
	}
	if meta.Kind != ckpt.KindDistMult && len(meta.Fanouts) < meta.Layers {
		return nil, ckpt.Mismatch("fanouts", "checkpoint has %d fanouts for %d layers", len(meta.Fanouts), meta.Layers)
	}

	snap := &Snapshot{Path: path, LoadedAt: time.Now(), File: cp, Meta: meta, Params: nn.NewParamSet()}
	rng := rand.New(rand.NewSource(cp.Seed))

	switch man.Task {
	case "nc":
		if meta.FeatureDim != man.FeatureDim || cp.TableCols != man.FeatureDim {
			return nil, ckpt.Mismatch("feature_dim", "checkpoint feature dim %d, dataset feature dim %d", cp.TableCols, man.FeatureDim)
		}
		if meta.NumClasses != man.NumClasses {
			return nil, ckpt.Mismatch("classes", "checkpoint has %d classes, dataset has %d", meta.NumClasses, man.NumClasses)
		}
		dims := encoderDims(meta.FeatureDim, meta.Dim, meta.NumClasses, meta.Layers)
		if snap.Encoder, err = buildEncoder(meta.Kind, snap.Params, dims, rng); err != nil {
			return nil, err
		}
		snap.Store = ctx.Features
	case "lp":
		if cp.TableCols != meta.Dim {
			return nil, ckpt.Mismatch("dim", "checkpoint table dim %d, model dim %d", cp.TableCols, meta.Dim)
		}
		if rels := max(man.NumRels, 1); meta.NumRels != rels {
			return nil, ckpt.Mismatch("relations", "checkpoint has %d relations, dataset has %d", meta.NumRels, rels)
		}
		if cp.Table == nil {
			return nil, ckpt.Mismatch("table", "link-prediction checkpoint carries no embedding table")
		}
		if meta.Kind != ckpt.KindDistMult {
			dims := encoderDims(meta.Dim, meta.Dim, meta.Dim, meta.Layers)
			if snap.Encoder, err = buildEncoder(meta.Kind, snap.Params, dims, rng); err != nil {
				return nil, err
			}
		}
		// Decoder kind from the checkpoint metadata; checkpoints written
		// before multiple decoders existed carry no name and can only have
		// been trained with DistMult.
		decKind := meta.Decoder
		if decKind == "" {
			decKind = decoder.KindDistMult
		}
		if snap.Decoder, err = decoder.New(decKind, snap.Params, meta.NumRels, meta.Dim, rng); err != nil {
			return nil, ckpt.Mismatch("decoder", "%v", err)
		}
		snap.Table = tensor.New(cp.TableRows, cp.TableCols)
		copy(snap.Table.Data, cp.Table)
		snap.Store = encode.TensorStore{T: snap.Table}
	default:
		return nil, ckpt.Mismatch("task", "unknown task %q", man.Task)
	}

	if err := snap.Params.LoadState(cp.Params); err != nil {
		return nil, ckpt.Mismatch("params", "%v", err)
	}
	if snap.Decoder != nil {
		snap.RelTable = snap.Decoder.RelParam().Value
	}

	if cp.DatasetUUID != "" && man.UUID != "" && cp.DatasetUUID != man.UUID {
		snap.Warning = fmt.Sprintf("checkpoint %s was trained on dataset %s but is being served against %s; outputs may be meaningless", path, cp.DatasetUUID, man.UUID)
	}

	if snap.Encoder != nil {
		snap.fwd = encode.New(encode.Config{
			Encoder: snap.Encoder, Params: snap.Params,
			Fanouts: meta.Fanouts[:meta.Layers], Dirs: graph.Both,
			Workers: cfg.Workers,
		}, ctx.Adj, cfg.Seed)
	}
	snap.cmp = tensor.NewCompute(cfg.Workers, nil)

	if snap.Decoder != nil {
		if err := snap.buildEncTable(ctx, cfg, cp.Seed); err != nil {
			return nil, err
		}
		if cfg.QuantizeTable != "" {
			kind, err := tensor.ParseQuant(cfg.QuantizeTable)
			if err != nil {
				return nil, fmt.Errorf("serve: %w", err)
			}
			// Quantize once per load; scoring dequantizes the same bytes
			// on every query, so results are reproducible bit-for-bit —
			// they just carry this table's storage rounding.
			snap.EncQ = tensor.Quantize(snap.EncTable, kind)
			snap.EncTable = nil
		}
		if snap.Decoder.Norms() {
			// Norm completion runs against the table scoring actually
			// sees: dequantized rows when the table is quantized, so
			// scores stay exactly 2<q,e> - |q|² - |e|² over the served
			// representations.
			if snap.EncQ != nil {
				snap.EncNorms = decoder.QTableNorms(snap.EncQ)
			} else {
				snap.EncNorms = decoder.TableNorms(snap.EncTable)
			}
		}
	}
	return snap, nil
}

// buildEncoder rebuilds a GNN encoder of the checkpointed kind with
// freshly initialized parameters (overwritten by LoadState below).
func buildEncoder(kind string, ps *nn.ParamSet, dims []int, rng *rand.Rand) (*gnn.Encoder, error) {
	switch kind {
	case ckpt.KindSage:
		return gnn.BuildSage(ps, dims, gnn.Mean, rng), nil
	case ckpt.KindGAT:
		return gnn.BuildGAT(ps, dims, rng), nil
	case ckpt.KindGCN:
		return gnn.BuildGCN(ps, dims, rng), nil
	default:
		return nil, ckpt.Mismatch("model", "unknown encoder kind %q", kind)
	}
}

// buildEncTable precomputes the encoded representation of every entity
// for LP top-k scoring: chunks of the full node range pushed through the
// encoder once at load time, so a query is a single fused gather-matmul
// over this table instead of N on-line encodes. For decoder-only models
// the encoded table is the embedding table itself.
func (s *Snapshot) buildEncTable(ctx *Context, cfg Config, seed int64) error {
	if s.Encoder == nil {
		s.EncTable = s.Table
		return nil
	}
	// encode.FullTable uses a dedicated Forward (the precompute must not
	// disturb the serving sampler's state) with per-chunk seeding, so the
	// table is a pure function of (checkpoint, adjacency, seed) — and
	// bit-identical to the table the training-side ranking evaluator
	// builds for the same state and seed.
	table, err := encode.FullTable(encode.Config{
		Encoder: s.Encoder, Params: s.Params,
		Fanouts: s.Meta.Fanouts[:s.Meta.Layers], Dirs: graph.Both,
		Workers: cfg.Workers,
	}, ctx.Adj, s.Store, ctx.NumNodes(), s.Meta.Dim, seed)
	if err != nil {
		return err
	}
	s.EncTable = table
	return nil
}
