package serve

import (
	"testing"
	"time"
)

// fillRing adds the values 1..n milliseconds in order.
func fillRing(r *latRing, n int) {
	for i := 1; i <= n; i++ {
		r.add(time.Duration(i) * time.Millisecond)
	}
}

// Ceil-rank quantiles: over 1..100, p50 must be exactly 50 (the smallest
// value with ≥50% of observations at or below it) and p99 exactly 99.
// The old truncating rank int(q·(n-1)) returned 49 and 98.
func TestQuantilesExactRanks(t *testing.T) {
	var r latRing
	fillRing(&r, 100)
	q := r.quantiles()
	if q.P50 != 50 {
		t.Errorf("p50 over 1..100 = %v, want 50", q.P50)
	}
	if q.P99 != 99 {
		t.Errorf("p99 over 1..100 = %v, want 99", q.P99)
	}
}

// Over a full window (1024 samples, ring wrapped to hold 1..1024), p99 is
// the ceil(0.99·1024) = 1014th order statistic. The truncating rank read
// index 1012 — the ~p98.9 observation — hiding the true tail.
func TestQuantilesFullWindow(t *testing.T) {
	var r latRing
	fillRing(&r, latWindow)
	q := r.quantiles()
	if q.P99 != 1014 {
		t.Errorf("p99 over full window = %v, want 1014", q.P99)
	}
	if q.P50 != 512 {
		t.Errorf("p50 over full window = %v, want 512", q.P50)
	}
}

func TestQuantilesEdgeCases(t *testing.T) {
	var empty latRing
	if q := empty.quantiles(); q.P50 != 0 || q.P99 != 0 {
		t.Errorf("empty ring quantiles = %+v, want zeros", q)
	}

	var one latRing
	one.add(7 * time.Millisecond)
	if q := one.quantiles(); q.P50 != 7 || q.P99 != 7 {
		t.Errorf("single-sample quantiles = %+v, want both 7", q)
	}

	var two latRing
	two.add(1 * time.Millisecond)
	two.add(2 * time.Millisecond)
	q := two.quantiles()
	// ceil(0.5·2) = 1st order statistic; ceil(0.99·2) = 2nd.
	if q.P50 != 1 || q.P99 != 2 {
		t.Errorf("two-sample quantiles = %+v, want p50=1 p99=2", q)
	}
}

// The ring wraps: after latWindow+k adds, the window holds the most
// recent latWindow observations, not the first ones.
func TestQuantilesRingWraps(t *testing.T) {
	var r latRing
	fillRing(&r, latWindow+100)
	// Window now holds 101..1124; p99 = ceil(0.99·1024)th = 1014th order
	// statistic = 100 + 1014 = 1114.
	q := r.quantiles()
	if q.P99 != 1114 {
		t.Errorf("p99 after wrap = %v, want 1114", q.P99)
	}
}
