package serve

import (
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// newTestServer builds a minimal Server with live stats and a request
// queue but no dispatcher — enough to exercise Statz, Health, and the
// record paths white-box.
func newTestServer(queueCap int) *Server {
	reg := obs.NewRegistry()
	s := &Server{stats: newStats(reg), reqs: make(chan *call, queueCap)}
	s.reloads = reg.Counter("serve_reloads_total", "")
	s.reloadFailures = reg.Counter("serve_reload_failures_total", "")
	s.snap.Store(&Snapshot{Path: "test.ckpt", LoadedAt: time.Unix(1, 0)})
	return s
}

func TestStatzShape(t *testing.T) {
	s := newTestServer(8)
	s.stats.recordBatch(3, 2*time.Millisecond, 4*time.Millisecond, time.Millisecond)
	s.stats.recordBatch(70, time.Millisecond, time.Millisecond, time.Millisecond)
	s.stats.recordCall(time.Millisecond, 8*time.Millisecond, false)
	s.stats.recordCall(time.Millisecond, 8*time.Millisecond, true)

	st := s.Statz()
	if st.Requests != 73 || st.Batches != 2 || st.Errors != 1 {
		t.Fatalf("counters = %d/%d/%d, want 73/2/1", st.Requests, st.Batches, st.Errors)
	}
	// Size 3 lands in "<=4" (le semantics), 70 overflows to ">64";
	// empty buckets are omitted, exactly like the pre-registry shape.
	if st.BatchSizeHist["<=4"] != 1 || st.BatchSizeHist[">64"] != 1 || len(st.BatchSizeHist) != 2 {
		t.Fatalf("batch hist = %v", st.BatchSizeHist)
	}
	for _, stage := range []string{"queue_wait", "sample", "encode", "decode", "total"} {
		if _, ok := st.Latency[stage]; !ok {
			t.Fatalf("latency map missing %q: %v", stage, st.Latency)
		}
	}
	if q := st.Latency["total"]; q.P50 <= 0 || q.P99 < q.P50 {
		t.Fatalf("total quantiles not ordered: %+v", q)
	}
	if st.Checkpoint != "test.ckpt" {
		t.Fatalf("checkpoint = %q", st.Checkpoint)
	}
}

// A batch size exactly on a bucket bound is counted in that bucket:
// size 64 reports as "<=64", not ">64".
func TestStatzBatchBucketBoundary(t *testing.T) {
	s := newTestServer(8)
	s.stats.recordBatch(64, 0, 0, 0)
	st := s.Statz()
	if st.BatchSizeHist["<=64"] != 1 || st.BatchSizeHist[">64"] != 0 {
		t.Fatalf("batch hist = %v, want size 64 in <=64", st.BatchSizeHist)
	}
}

// The satellite -race test: Statz must be safe (and lock-free)
// concurrent with recordBatch/recordCall hammering the hot path.
func TestStatzConcurrentWithRecords(t *testing.T) {
	s := newTestServer(8)
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				s.stats.recordBatch(1+i%99, time.Duration(i)*time.Microsecond,
					time.Microsecond, time.Microsecond)
				s.stats.recordCall(time.Microsecond, time.Duration(i)*time.Microsecond, i%7 == 0)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	var last uint64
	for alive := true; alive; {
		select {
		case <-done:
			alive = false
		default:
		}
		st := s.Statz()
		if st.Batches < last {
			t.Fatalf("batches went backwards: %d -> %d", last, st.Batches)
		}
		last = st.Batches
	}
	st := s.Statz()
	if st.Batches != 4*perWorker {
		t.Fatalf("batches = %d, want %d", st.Batches, 4*perWorker)
	}
}

// Histogram snapshots are internally consistent: the _count equals the
// sum of bucket counts even under concurrent observes.
func TestStatzSnapshotConsistency(t *testing.T) {
	s := newTestServer(8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				s.stats.total.Observe(float64(i % 50))
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		snap := s.stats.total.Snapshot()
		var sum uint64
		for _, c := range snap.Counts {
			sum += c
		}
		if sum != snap.Count {
			t.Fatalf("snapshot count %d != bucket sum %d", snap.Count, sum)
		}
		select {
		case <-done:
			if got := s.stats.total.Snapshot().Count; got != 20000 {
				t.Fatalf("final count = %d, want 20000", got)
			}
			return
		default:
		}
	}
}

func TestHealthDegradedOnReloadFailure(t *testing.T) {
	s := newTestServer(8)
	if ok, _ := s.Health(); !ok {
		t.Fatal("fresh server should be healthy")
	}
	msg := "open missing.ckpt: no such file"
	s.reloadErr.Store(&msg)
	ok, reason := s.Health()
	if ok {
		t.Fatal("server with failed reload should be degraded")
	}
	if reason != "last reload failed: "+msg {
		t.Fatalf("reason = %q", reason)
	}
	// A successful reload clears it.
	s.reloadErr.Store(nil)
	if ok, _ := s.Health(); !ok {
		t.Fatal("cleared reload error should restore health")
	}
}

func TestHealthDegradedOnQueueSaturation(t *testing.T) {
	s := newTestServer(8)
	for i := 0; i < saturationThreshold-1; i++ {
		s.noteSaturation(true)
	}
	if ok, _ := s.Health(); !ok {
		t.Fatalf("below threshold (%d) should still be healthy", saturationThreshold-1)
	}
	s.noteSaturation(true)
	ok, reason := s.Health()
	if ok {
		t.Fatal("sustained saturation should degrade health")
	}
	if reason == "" {
		t.Fatal("degraded health must carry a reason")
	}
	// One unsaturated dispatch resets the streak.
	s.noteSaturation(false)
	if ok, _ := s.Health(); !ok {
		t.Fatal("saturation streak reset should restore health")
	}
}
