package serve

import (
	"math"
	"sort"
	"strconv"
	"sync"
	"time"
)

// latWindow is the sliding-window size of the per-stage latency rings.
const latWindow = 1024

// latRing is a fixed-size ring of recent latency observations.
type latRing struct {
	vals [latWindow]float64
	next int
	n    int
}

func (r *latRing) add(d time.Duration) {
	r.vals[r.next] = float64(d) / float64(time.Millisecond)
	r.next = (r.next + 1) % latWindow
	if r.n < latWindow {
		r.n++
	}
}

// Quantiles summarizes a latency window in milliseconds.
type Quantiles struct {
	P50 float64 `json:"p50_ms"`
	P99 float64 `json:"p99_ms"`
}

func (r *latRing) quantiles() Quantiles {
	if r.n == 0 {
		return Quantiles{}
	}
	sorted := append([]float64(nil), r.vals[:r.n]...)
	sort.Float64s(sorted)
	// Ceil-rank (nearest-rank) quantile: the smallest value with at least
	// q·n observations at or below it. Truncating int(q·(n-1)) instead
	// systematically under-reports the tail — over a full 1024 window it
	// returns the ~p98.8 observation as "p99".
	at := func(q float64) float64 {
		i := int(math.Ceil(q*float64(len(sorted)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	return Quantiles{P50: at(0.50), P99: at(0.99)}
}

// batchBuckets are the upper bounds of the batch-size histogram buckets.
var batchBuckets = []int{1, 2, 4, 8, 16, 32, 64}

// stats aggregates serving counters and latency windows. All methods are
// called under its mutex; readers get a consistent snapshot via Statz.
type stats struct {
	mu        sync.Mutex
	requests  uint64
	batches   uint64
	errors    uint64
	batchHist [8]uint64 // batchBuckets + overflow

	queueWait latRing // enqueue -> batch start, per request
	sample    latRing // per batch
	encode    latRing // per batch
	decode    latRing // per batch
	total     latRing // enqueue -> response, per request
}

func (st *stats) recordBatch(size int, sample, encode, decode time.Duration) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.batches++
	st.requests += uint64(size)
	b := len(batchBuckets)
	for i, hi := range batchBuckets {
		if size <= hi {
			b = i
			break
		}
	}
	st.batchHist[b]++
	st.sample.add(sample)
	st.encode.add(encode)
	st.decode.add(decode)
}

func (st *stats) recordCall(queueWait, total time.Duration, failed bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.queueWait.add(queueWait)
	st.total.add(total)
	if failed {
		st.errors++
	}
}

// Statz is the monitoring snapshot served at /statz.
type Statz struct {
	Checkpoint string    `json:"checkpoint"`
	LoadedAt   time.Time `json:"loaded_at"`
	Warning    string    `json:"warning,omitempty"`

	QueueDepth int    `json:"queue_depth"`
	Requests   uint64 `json:"requests"`
	Batches    uint64 `json:"batches"`
	Errors     uint64 `json:"errors"`

	// BatchSizeHist counts dispatched micro-batches by size bucket
	// ("<=1", "<=2", ..., ">64").
	BatchSizeHist map[string]uint64 `json:"batch_size_hist"`

	// Latency holds sliding-window quantiles per stage: queue_wait and
	// total are per request, sample/encode/decode per micro-batch.
	Latency map[string]Quantiles `json:"latency"`
}

// Statz returns the current monitoring snapshot.
func (s *Server) Statz() Statz {
	snap := s.snap.Load()
	st := &s.stats
	st.mu.Lock()
	defer st.mu.Unlock()
	hist := make(map[string]uint64, len(st.batchHist))
	for i, c := range st.batchHist {
		if c == 0 {
			continue
		}
		if i < len(batchBuckets) {
			hist["<="+strconv.Itoa(batchBuckets[i])] = c
		} else {
			hist[">"+strconv.Itoa(batchBuckets[len(batchBuckets)-1])] = c
		}
	}
	return Statz{
		Checkpoint:    snap.Path,
		LoadedAt:      snap.LoadedAt,
		Warning:       snap.Warning,
		QueueDepth:    len(s.reqs),
		Requests:      st.requests,
		Batches:       st.batches,
		Errors:        st.errors,
		BatchSizeHist: hist,
		Latency: map[string]Quantiles{
			"queue_wait": st.queueWait.quantiles(),
			"sample":     st.sample.quantiles(),
			"encode":     st.encode.quantiles(),
			"decode":     st.decode.quantiles(),
			"total":      st.total.quantiles(),
		},
	}
}
