package serve

import (
	"strconv"
	"time"

	"repro/internal/obs"
)

// latBuckets are the shared per-stage latency bounds in milliseconds:
// 0.05ms .. ~6.5s exponentially. Quantiles served at /statz
// interpolate within these buckets.
var latBuckets = obs.ExpBuckets(0.05, 2, 18)

// batchBuckets are the upper bounds of the batch-size histogram.
var batchBuckets = []float64{1, 2, 4, 8, 16, 32, 64}

// Quantiles summarizes one latency stage in milliseconds.
type Quantiles struct {
	P50 float64 `json:"p50_ms"`
	P99 float64 `json:"p99_ms"`
}

// stats aggregates serving counters and latency distributions on a
// metrics registry. The record paths are lock-free (atomic adds and
// histogram observes) — no shared mutex on the request path; /statz
// and /metrics read consistent per-metric snapshots concurrently.
type stats struct {
	reg *obs.Registry

	requests *obs.Counter
	batches  *obs.Counter
	errors   *obs.Counter

	// Resilience counters: requests shed at a full queue, requests whose
	// per-request deadline expired while waiting, and panics contained by
	// the dispatcher.
	shed      *obs.Counter
	deadlines *obs.Counter
	panics    *obs.Counter

	batchSize *obs.Histogram

	queueWait *obs.Histogram // enqueue -> batch start, per request
	sample    *obs.Histogram // per batch
	encode    *obs.Histogram // per batch
	decode    *obs.Histogram // per batch
	total     *obs.Histogram // enqueue -> response, per request
}

// newStats builds the serve metric family on reg.
func newStats(reg *obs.Registry) *stats {
	lat := func(stage string) *obs.Histogram {
		return reg.Histogram("serve_latency_milliseconds",
			"Per-stage serving latency: queue_wait and total are per request, sample/encode/decode per micro-batch.",
			latBuckets, obs.L("stage", stage))
	}
	return &stats{
		reg:       reg,
		requests:  reg.Counter("serve_requests_total", "Requests served (including failed ones)."),
		batches:   reg.Counter("serve_batches_total", "Micro-batches dispatched."),
		errors:    reg.Counter("serve_errors_total", "Requests that completed with an error."),
		shed:      reg.Counter("serve_shed_total", "Requests rejected at a full dispatch queue (HTTP 503)."),
		deadlines: reg.Counter("serve_deadline_expired_total", "Requests whose per-request deadline expired (HTTP 504)."),
		panics:    reg.Counter("serve_panics_recovered_total", "Panics contained by the dispatcher; the batch failed, the server kept serving."),
		batchSize: reg.Histogram("serve_batch_size", "Dispatched micro-batch sizes.", batchBuckets),
		queueWait: lat("queue_wait"),
		sample:    lat("sample"),
		encode:    lat("encode"),
		decode:    lat("decode"),
		total:     lat("total"),
	}
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func (st *stats) recordBatch(size int, sample, encode, decode time.Duration) {
	st.batches.Inc()
	st.requests.Add(uint64(size))
	st.batchSize.Observe(float64(size))
	st.sample.Observe(ms(sample))
	st.encode.Observe(ms(encode))
	st.decode.Observe(ms(decode))
}

func (st *stats) recordCall(queueWait, total time.Duration, failed bool) {
	st.queueWait.Observe(ms(queueWait))
	st.total.Observe(ms(total))
	if failed {
		st.errors.Inc()
	}
}

// Statz is the monitoring snapshot served at /statz.
type Statz struct {
	Checkpoint string    `json:"checkpoint"`
	LoadedAt   time.Time `json:"loaded_at"`
	// Decoder is the serving decoder kind ("distmult", "complex",
	// "transe"); empty for node-classification datasets.
	Decoder string `json:"decoder,omitempty"`
	Warning string `json:"warning,omitempty"`

	QueueDepth int    `json:"queue_depth"`
	Requests   uint64 `json:"requests"`
	Batches    uint64 `json:"batches"`
	Errors     uint64 `json:"errors"`

	// Resilience counters: shed at a full queue (503), per-request
	// deadline expiries (504), and panics contained by the dispatcher
	// (500, process alive).
	Shed            uint64 `json:"shed"`
	DeadlineExpired uint64 `json:"deadline_expired"`
	PanicsRecovered uint64 `json:"panics_recovered"`

	// BatchSizeHist counts dispatched micro-batches by size bucket
	// ("<=1", "<=2", ..., ">64").
	BatchSizeHist map[string]uint64 `json:"batch_size_hist"`

	// Latency holds per-stage quantiles (interpolated from the
	// histograms backing /metrics): queue_wait and total are per
	// request, sample/encode/decode per micro-batch.
	Latency map[string]Quantiles `json:"latency"`
}

func quantiles(h *obs.Histogram) Quantiles {
	s := h.Snapshot()
	return Quantiles{P50: s.Quantile(0.50), P99: s.Quantile(0.99)}
}

// Statz returns the current monitoring snapshot. Each counter and
// histogram is read via a consistent point-in-time snapshot; no lock
// is shared with the request path.
func (s *Server) Statz() Statz {
	snap := s.snap.Load()
	st := s.stats
	bs := st.batchSize.Snapshot()
	hist := make(map[string]uint64, len(bs.Counts))
	for i, c := range bs.Counts {
		if c == 0 {
			continue
		}
		if i < len(bs.Bounds) {
			hist["<="+strconv.Itoa(int(bs.Bounds[i]))] = c
		} else {
			hist[">"+strconv.Itoa(int(bs.Bounds[len(bs.Bounds)-1]))] = c
		}
	}
	var dec string
	if snap.Decoder != nil {
		dec = snap.Decoder.Kind()
	}
	return Statz{
		Checkpoint:      snap.Path,
		LoadedAt:        snap.LoadedAt,
		Decoder:         dec,
		Warning:         snap.Warning,
		QueueDepth:      len(s.reqs),
		Requests:        st.requests.Value(),
		Batches:         st.batches.Value(),
		Errors:          st.errors.Value(),
		Shed:            st.shed.Value(),
		DeadlineExpired: st.deadlines.Value(),
		PanicsRecovered: st.panics.Value(),
		BatchSizeHist:   hist,
		Latency: map[string]Quantiles{
			"queue_wait": quantiles(st.queueWait),
			"sample":     quantiles(st.sample),
			"encode":     quantiles(st.encode),
			"decode":     quantiles(st.decode),
			"total":      quantiles(st.total),
		},
	}
}
