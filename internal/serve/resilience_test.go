// Resilience tests: load shedding at a full queue (503 + Retry-After),
// per-request deadlines (504), panic containment in the dispatcher
// (500, process alive), and the /healthz degradation each of them
// feeds. The chaos entry point is Hooks.BeforeBatch — a hook that
// blocks stalls the dispatcher so the queue saturates on demand; a
// hook that panics exercises fault containment.
package serve_test

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
)

// stallServer starts a server whose dispatcher blocks inside
// Hooks.BeforeBatch until gate is closed. MaxBatch 1 and QueueCap 1
// make the saturation arithmetic exact: one request stuck in its
// batch, one queued, everything else shed.
func stallServer(t *testing.T, dir, ckptPath string, cfg serve.Config) (srv *serve.Server, unstall func()) {
	t.Helper()
	gate := make(chan struct{})
	cfg.MaxBatch = 1
	cfg.MaxWait = time.Millisecond
	cfg.QueueCap = 1
	cfg.Hooks = &serve.Hooks{BeforeBatch: func(int) { <-gate }}
	srv = startServer(t, dir, ckptPath, cfg)
	var once sync.Once
	unstall = func() { once.Do(func() { close(gate) }) }
	t.Cleanup(unstall)
	return srv, unstall
}

// waitQueueDepth polls until the server's queue holds want requests.
func waitQueueDepth(t *testing.T, srv *serve.Server, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Statz().QueueDepth != want {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth never reached %d (at %d)", want, srv.Statz().QueueDepth)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestShedAtFullQueue stalls the dispatcher, saturates the queue, and
// requires every excess request to fail fast with ErrOverloaded —
// mapped to HTTP 503 with a Retry-After header — while sustained
// shedding degrades /healthz and a single admitted request restores it.
func TestShedAtFullQueue(t *testing.T) {
	dir := prepNC(t, 2)
	ckptPath := train(t, dir, ncOpts, 1)[0]
	srv, unstall := stallServer(t, dir, ckptPath, serve.Config{})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	req := &serve.PredictRequest{Nodes: []int32{1, 2}, Seed: 7}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ { // one into the stalled batch, one into the queue
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := srv.Predict(context.Background(), req); err != nil {
				t.Error(err)
			}
		}()
	}
	waitQueueDepth(t, srv, 1)

	// Everything beyond the stalled batch + full queue sheds immediately:
	// no blocking, no unbounded queueing.
	for i := 0; i < 10; i++ {
		start := time.Now()
		_, err := srv.Predict(context.Background(), req)
		if !errors.Is(err, serve.ErrOverloaded) {
			t.Fatalf("shed request %d: got %v, want ErrOverloaded", i, err)
		}
		if d := time.Since(start); d > time.Second {
			t.Fatalf("shed request %d blocked %v; shedding must fail fast", i, d)
		}
	}
	if shed := srv.Statz().Shed; shed < 10 {
		t.Fatalf("serve_shed_total = %d, want >= 10", shed)
	}
	if ok, reason := srv.Health(); ok || !strings.Contains(reason, "shedding") {
		t.Fatalf("sustained shedding did not degrade health: ok=%v reason=%q", ok, reason)
	}

	// The HTTP surface maps the shed to 503 and tells clients when to
	// come back.
	resp := mustPost(t, hs.URL+"/v1/predict", req)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed over HTTP: status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("shed 503 carries no Retry-After header")
	}
	resp.Body.Close()

	// /metrics exposes the shed counter.
	mresp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(body), "serve_shed_total") {
		t.Fatal("/metrics missing serve_shed_total")
	}

	// Unblock; the two admitted requests finish, and one post-recovery
	// admission resets the consecutive-shed counter.
	unstall()
	wg.Wait()
	if _, err := srv.Predict(context.Background(), req); err != nil {
		t.Fatalf("predict after recovery: %v", err)
	}
	if ok, reason := srv.Health(); !ok {
		t.Fatalf("health still degraded after recovery: %s", reason)
	}
}

// TestRequestTimeoutExpires serves against a stalled dispatcher with a
// per-request deadline: the caller gets context.DeadlineExceeded (HTTP
// 504), serve_deadline_expired_total increments, and once the stall
// clears the server serves normally.
func TestRequestTimeoutExpires(t *testing.T) {
	dir := prepNC(t, 2)
	ckptPath := train(t, dir, ncOpts, 1)[0]
	srv, unstall := stallServer(t, dir, ckptPath, serve.Config{RequestTimeout: 50 * time.Millisecond})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	req := &serve.PredictRequest{Nodes: []int32{1}, Seed: 3}
	_, err := srv.Predict(context.Background(), req)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stalled predict: got %v, want DeadlineExceeded", err)
	}
	resp := mustPost(t, hs.URL+"/v1/predict", req)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("stalled predict over HTTP: status %d, want 504", resp.StatusCode)
	}
	resp.Body.Close()
	if n := srv.Statz().DeadlineExpired; n < 2 {
		t.Fatalf("serve_deadline_expired_total = %d, want >= 2", n)
	}

	unstall()
	// The dispatcher drains the expired calls (their results land in
	// buffered channels nobody reads), then serves fresh traffic within
	// the same deadline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := srv.Predict(context.Background(), req); err == nil {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("server never recovered after stall: %v", err)
		}
	}
}

// TestPanicContained injects a panic into one micro-batch via
// Hooks.BeforeBatch: that batch's requests fail (HTTP 500),
// serve_panics_recovered_total increments, and the very next request
// succeeds — one poisoned batch must not kill the process.
func TestPanicContained(t *testing.T) {
	dir := prepNC(t, 2)
	ckptPath := train(t, dir, ncOpts, 1)[0]
	var poison atomic.Bool
	cfg := serve.Config{
		MaxBatch: 1,
		MaxWait:  time.Millisecond,
		Hooks: &serve.Hooks{BeforeBatch: func(int) {
			if poison.Load() {
				panic("injected chaos panic")
			}
		}},
	}
	srv := startServer(t, dir, ckptPath, cfg)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	req := &serve.PredictRequest{Nodes: []int32{1, 2}, Seed: 7}
	if _, err := srv.Predict(context.Background(), req); err != nil {
		t.Fatalf("pre-chaos predict: %v", err)
	}

	poison.Store(true)
	_, err := srv.Predict(context.Background(), req)
	if err == nil || !strings.Contains(err.Error(), "panic recovered") {
		t.Fatalf("poisoned predict: got %v, want panic-recovered error", err)
	}
	resp := mustPost(t, hs.URL+"/v1/predict", req)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("poisoned predict over HTTP: status %d, want 500", resp.StatusCode)
	}
	resp.Body.Close()
	if n := srv.Statz().PanicsRecovered; n != 2 {
		t.Fatalf("serve_panics_recovered_total = %d, want 2", n)
	}

	poison.Store(false)
	got, err := srv.Predict(context.Background(), req)
	if err != nil {
		t.Fatalf("predict after contained panic: %v", err)
	}
	if len(got.Classes) != 2 {
		t.Fatalf("post-panic response malformed: %+v", got)
	}
	if ok, reason := srv.Health(); !ok {
		t.Fatalf("contained panic degraded health: %s", reason)
	}
}
