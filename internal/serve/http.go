package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/ckpt"
)

// Handler returns the server's HTTP surface:
//
//	POST /v1/predict  {"nodes":[...], "seed":0}               -> PredictResponse
//	POST /v1/topk     {"src":0,"relation":0,"k":10}           -> TopKResponse
//	POST /reload      {"checkpoint":"path"} (optional)         -> reload summary
//	GET  /healthz                                             -> 200 "ok", or 503 + JSON reason when degraded
//	GET  /statz                                               -> Statz
//	GET  /metrics                                             -> Prometheus text exposition
//
// /v1/topk accepts the relation as "relation" (current) or "rel" (the
// original single-relation-era field name); on single-relation datasets
// the relation may be omitted entirely, so v1-era request bodies keep
// round-tripping unchanged. "filter": true removes known true tails (the
// filtered protocol). See TopKRequest for the full contract.
//
// ErrBadRequest maps to 400 — malformed JSON, wrong task, out-of-range
// node or relation IDs, a missing relation on a multi-relation dataset,
// or conflicting "relation"/"rel" values. ErrCheckpointMismatch (via
// /reload) maps to 409, ErrClosed to 503, ErrOverloaded (request shed at
// a full queue) to 503 with a Retry-After header, an expired per-request
// deadline (Config.RequestTimeout) to 504, anything else to 500.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/predict", func(w http.ResponseWriter, r *http.Request) {
		var req PredictRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, errors.Join(ErrBadRequest, err))
			return
		}
		resp, err := s.Predict(r.Context(), &req)
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("POST /v1/topk", func(w http.ResponseWriter, r *http.Request) {
		var req TopKRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, errors.Join(ErrBadRequest, err))
			return
		}
		resp, err := s.TopK(r.Context(), &req)
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("POST /reload", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Checkpoint string `json:"checkpoint"`
		}
		if r.ContentLength != 0 {
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				httpError(w, errors.Join(ErrBadRequest, err))
				return
			}
		}
		path := req.Checkpoint
		if path == "" {
			path = s.Snapshot().Path
		}
		snap, err := s.Reload(path)
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, map[string]any{
			"checkpoint": snap.Path,
			"loaded_at":  snap.LoadedAt,
			"epoch":      snap.File.Epoch,
			"warning":    snap.Warning,
		})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if ok, reason := s.Health(); !ok {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]string{"status": "degraded", "reason": reason})
			return
		}
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /statz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Statz())
	})
	mux.Handle("GET /metrics", s.Metrics().Handler())
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrBadRequest):
		code = http.StatusBadRequest
	case errors.Is(err, ckpt.ErrMismatch):
		code = http.StatusConflict
	case errors.Is(err, ErrOverloaded):
		// Shed, not failed: the client should back off briefly and retry.
		w.Header().Set("Retry-After", "1")
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrClosed):
		code = http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		code = http.StatusGatewayTimeout
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
