// Package serve is the forward-only online inference subsystem: it loads
// a checkpoint plus a prepared dataset read-only, runs encode (k-hop
// DENSE sample + GNN forward on the shared internal/encode substrate) and
// decode (NC class prediction; LP top-k tail scoring via the fused
// GatherMatMulTB kernel), and aggregates concurrent requests through a
// bounded queue into micro-batches — the serving analog of the training
// pipeline's bounded-queue stages.
//
// # Request lifecycle
//
// A request enqueues into a bounded channel and blocks until answered.
// A single dispatcher goroutine collects up to Config.MaxBatch requests
// (waiting at most Config.MaxWait after the first), pins the current
// model snapshot, samples each request's neighborhood with a
// request-derived seed, concatenates the per-request DENSE structures
// into one merged DENSE, and runs one encoder forward + one decode
// kernel launch for the whole micro-batch.
//
// # Determinism
//
// Micro-batching never changes results: every kernel parallelizes only
// across output rows/segments with a fixed per-element accumulation
// order, each request's neighborhood is sampled with its own seed
// (independent of co-batched requests), and the merged DENSE keeps each
// request's blocks disjoint — so a request's outputs are byte-identical
// whether it is served alone or batched with others, and byte-identical
// to the training-side eval forward pass for the same checkpoint,
// targets and seed.
//
// # Hot reload
//
// Reload loads a new checkpoint and atomically swaps the snapshot
// pointer. Checkpoint-independent state (dataset, feature shards,
// adjacency) lives in Context and is shared across snapshots; each
// micro-batch pins exactly one snapshot, so in-flight requests finish on
// the snapshot they started with — old and new outputs are never mixed
// within a response.
package serve

import (
	"fmt"
	"io"
	"time"

	"repro/internal/encode"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/tensor"
)

// Config tunes the server. The zero value resolves to the defaults
// below.
type Config struct {
	// MaxBatch is the micro-batch size cap (default 32): the dispatcher
	// launches a batch as soon as this many requests are queued.
	MaxBatch int
	// MaxWait bounds how long the dispatcher waits for co-batched
	// requests after the first one arrives (default 2ms).
	MaxWait time.Duration
	// QueueCap is the bounded request queue length (default 4*MaxBatch).
	// A request arriving at a full queue is shed immediately with
	// ErrOverloaded (HTTP 503 + Retry-After) instead of queueing without
	// bound: under overload, admitted requests keep a bounded latency and
	// the excess fails fast.
	QueueCap int
	// Workers is the kernel fan-out (default 4). Kernels are bitwise
	// deterministic at every worker count.
	Workers int
	// Seed mixes into request-content-derived sampling seeds, so two
	// servers can serve decorrelated samples; requests carrying an
	// explicit seed are unaffected.
	Seed int64
	// InMemory loads NC feature shards fully into memory instead of
	// gathering from the partition-buffered disk store. Quantized
	// datasets stay in their compressed form in memory.
	InMemory bool
	// QuantizeTable quantizes the precomputed LP encoding table to
	// "fp16" or "int8" after it is built, halving or quartering its
	// resident memory. Scoring then runs the fused dequantizing kernel;
	// results stay bit-identical across worker counts and batch shapes
	// but differ from the unquantized table by the storage rounding, so
	// the default ("") keeps exact float32 scores.
	QuantizeTable string
	// Tracer, when non-nil, records serving-stage spans (queue wait,
	// sample, encode, decode) in Chrome Trace Event Format. Purely
	// observational; results are identical with it on or off.
	Tracer *obs.Tracer
	// RequestTimeout, when positive, bounds each request's total time in
	// the server (queue wait plus its micro-batch): on expiry the caller
	// gets context.DeadlineExceeded (HTTP 504) and the
	// serve_deadline_expired_total counter increments. Zero means no
	// server-imposed deadline (callers may still pass their own context
	// deadlines).
	RequestTimeout time.Duration
	// Hooks, when non-nil, attaches chaos/test instrumentation points;
	// see Hooks. Nil (the default) costs nothing on the request path.
	Hooks *Hooks
}

// Hooks are chaos-testing instrumentation points. All fields are
// optional; nil functions are never called.
type Hooks struct {
	// BeforeBatch runs on the dispatcher goroutine just before each
	// micro-batch is served, inside the server's panic-recovery scope: a
	// hook that panics exercises fault containment (the batch's requests
	// fail, the counter increments, and the server keeps serving).
	BeforeBatch func(batchSize int)
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 4 * c.MaxBatch
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	return c
}

// Context is the checkpoint-independent serving state: the validated
// dataset, the full-graph adjacency (built from the bucket-ordered edge
// file, exactly as training-side evaluation builds it), and for node
// classification the read-only feature store. One Context is shared by
// every snapshot a server hot-reloads, so a reload never reopens shards
// or rebuilds the adjacency.
type Context struct {
	Dir string
	DS  *storage.Dataset
	Adj *graph.Adjacency

	// Features is the NC base-representation store (nil for LP, whose
	// base table comes from the checkpoint).
	Features encode.Store

	// allNodes caches [0 .. NumNodes) for full-entity top-k scoring via
	// the fused GatherMatMulTB kernel.
	allNodes []int32

	closer io.Closer // disk-backed feature store, when one was opened

	// featStats are the disk feature store's IO counters (nil for
	// in-memory or LP datasets); New bridges them into the registry.
	featStats *storage.Stats
}

// Open validates the dataset directory (storage.OpenDataset checks the
// layout and file sizes) and builds the checkpoint-independent serving
// state. Everything is opened read-only; serving never mutates a
// dataset.
func Open(dir string, cfg Config) (*Context, error) {
	cfg = cfg.withDefaults()
	ds, err := storage.OpenDataset(dir)
	if err != nil {
		return nil, err
	}
	man := ds.Man

	// The serving adjacency replicates evaluation's: all buckets in
	// (i,j) order off the dataset's bucket-sorted edge file. This keeps
	// served samples on the same neighbor layout eval uses.
	es, err := ds.EdgeStore(nil)
	if err != nil {
		return nil, err
	}
	p := man.Partitions
	var total int64
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			total += int64(es.BucketLen(i, j))
		}
	}
	edges := make([]graph.Edge, 0, total)
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			if edges, err = es.ReadBucket(i, j, edges); err != nil {
				es.Close()
				return nil, err
			}
		}
	}
	if err := es.Close(); err != nil {
		return nil, err
	}

	ctx := &Context{Dir: dir, DS: ds, Adj: graph.BuildAdjacency(man.NumNodes, edges)}
	ctx.allNodes = make([]int32, man.NumNodes)
	for i := range ctx.allNodes {
		ctx.allNodes[i] = int32(i)
	}
	if man.Task == "nc" {
		if cfg.InMemory {
			if man.QuantKind() != tensor.QuantNone {
				// Keep the table compressed in memory; gathers
				// dequantize per row, byte-identical to loading the
				// dequantized float32 table at 1/2 (fp16) or 1/4
				// (int8) of the footprint.
				q, err := ds.ReadQuantFeatures()
				if err != nil {
					return nil, err
				}
				ctx.Features = encode.QuantStore{Q: q}
			} else {
				table, err := ds.ReadFeatures()
				if err != nil {
					return nil, err
				}
				ctx.Features = encode.TensorStore{T: table}
			}
		} else {
			// Open the feature shard through the existing open-existing
			// DiskNodeStore path with capacity = partitions and make every
			// partition resident once: gathers then serve straight from the
			// buffer with no IO on the request path.
			ns, err := ds.NodeStore(man.Partitions, nil)
			if err != nil {
				return nil, err
			}
			parts := make([]int, man.Partitions)
			for i := range parts {
				parts[i] = i
			}
			if err := ns.LoadSet(parts); err != nil {
				ns.Close()
				return nil, err
			}
			ctx.Features = ns
			ctx.closer = ns
			ctx.featStats = ns.Stats()
		}
	}
	return ctx, nil
}

// Task returns the dataset's task name ("nc" or "lp").
func (c *Context) Task() string { return c.DS.Man.Task }

// NumNodes returns the dataset's node count.
func (c *Context) NumNodes() int { return c.DS.Man.NumNodes }

// Close releases the feature store, if one was opened.
func (c *Context) Close() error {
	if c.closer != nil {
		return c.closer.Close()
	}
	return nil
}

// validNode range-checks a node ID against the dataset.
func (c *Context) validNode(id int32) error {
	if id < 0 || int(id) >= c.DS.Man.NumNodes {
		return fmt.Errorf("%w: node %d out of range [0,%d)", ErrBadRequest, id, c.DS.Man.NumNodes)
	}
	return nil
}

// knownTails returns the set of entities d with a dataset edge
// (src, rel, d), scanned off the relation-carrying adjacency — the
// filter index for filtered top-k serving. The adjacency is immutable
// after Open, so this is safe from the dispatcher goroutine.
func (c *Context) knownTails(src, rel int32) map[int32]struct{} {
	nbrs, rels := c.Adj.OutNeighbors(src), c.Adj.OutRels(src)
	known := make(map[int32]struct{})
	for i, d := range nbrs {
		if rels[i] == rel {
			known[d] = struct{}{}
		}
	}
	return known
}
