// Package dataset is the streaming ingestion subsystem behind
// cmd/mariusprep: it converts raw edge lists (TSV/CSV text or packed
// binary triples, with optional node/feature/label/split files) into the
// versioned on-disk dataset layout that storage.OpenDataset,
// marius.FromDataset and cmd/mariusgnn -data consume directly (paper
// §4–5: preprocessing partitions the graph into p² edge buckets on disk
// before out-of-core training).
//
// Ingestion is memory-bounded: the edge list is never materialized.
// Edges stream through an external counting/bucket sort — buffered up to
// a configurable cap, stable-sorted by (source partition, destination
// partition) bucket, spilled as runs, and merged run-major so every
// bucket's edges keep their global input order. The node dictionary,
// relabeling and split lists are O(nodes), outside the edge cap.
//
// The ingest step applies the exact seeded relabeling marius.New applies
// to an in-memory graph (partition.RandomOrder for link prediction,
// partition.TrainFirstOrder for node classification), so training from a
// prepared directory is byte-identical — same losses, same checkpoints —
// to training the equivalent in-memory graph at the same seed.
package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"time"

	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/storage"
	"repro/internal/tensor"
)

// DefaultMemLimit is the default external-sort working-set cap (bytes).
const DefaultMemLimit = 256 << 20

// Config configures one Ingest run.
type Config struct {
	// Out is the dataset directory to create (the prep target).
	Out string
	// Edges is the raw training edge list: .csv (comma), .bin (packed
	// little-endian int32 triples), anything else whitespace-separated
	// text with 2 (src dst) or 3 (src rel dst) columns.
	Edges string
	// ValidEdges/TestEdges are optional held-out edge lists (link
	// prediction), same formats.
	ValidEdges, TestEdges string
	// Nodes is an optional node dictionary file: one raw node ID per
	// line (optionally "id label"), defining internal ID order. Without
	// it the dictionary is built first-seen over the edge and split
	// files.
	Nodes string
	// Features is an optional float32 binary feature table, row-major in
	// nodes-file order.
	Features string
	// TrainNodes/ValidNodes/TestNodes are optional split files (one raw
	// node ID per line, order preserved). Node classification requires
	// TrainNodes.
	TrainNodes, ValidNodes, TestNodes string

	// Task is "nc" or "lp": it selects the partition relabeling (and
	// what marius.FromDataset will train).
	Task string
	// Seed drives the relabeling; train with the same seed for
	// byte-identical parity with the in-memory path.
	Seed int64
	// Partitions is the physical partition count p baked into the
	// layout.
	Partitions int
	// NumRels overrides the relation count (0 infers max(rel)+1).
	NumRels int
	// NumClasses overrides the class count (0 infers max(label)+1).
	NumClasses int
	// FeatureDim declares the feature dimensionality; the feature file
	// must then be exactly nodes x FeatureDim float32s. 0 infers the
	// dim from the file size (which cannot catch a wrong-sized file
	// whose size happens to divide evenly).
	FeatureDim int

	// Quantize selects the feature-table storage encoding: "" (float32),
	// "fp16", or "int8" (per-row affine with a (scale, zero) sidecar).
	// Quantization happens here, exactly once — readers dequantize the
	// same stored bytes forever after, so a quantized dataset trains and
	// serves bit-identically at any worker count (it just differs from
	// its float32 sibling by the rounding applied at this step).
	Quantize string

	// MemLimit caps the external sort's edge working set in bytes
	// (buffered edges plus their encoded run image, 24 B/edge); 0 means
	// DefaultMemLimit. Small caps force multi-run spills.
	MemLimit int64
	// TmpDir holds spill files ("" = Out).
	TmpDir string

	// Force overwrites a partial output left by an interrupted prep
	// (payload files present without a manifest), sweeping the partial
	// payload and leftover temps first. Without it such a directory is a
	// typed ErrPartialOutput.
	Force bool

	// FS, when non-nil, routes every output write (payload files, the
	// manifest) through a fault-injection filesystem — the chaos seam
	// for crash-mid-ingest tests. Nil means the real filesystem.
	FS fault.FS

	// Progress, when non-nil, receives coarse stage updates:
	// stage name, units done, units total (total < 0 when unknown).
	Progress func(stage string, done, total int64)
}

// Stats reports one completed Ingest.
type Stats struct {
	NumNodes   int
	NumEdges   int64
	NumRels    int
	NumClasses int

	// SpillRuns is how many sorted runs the external sort wrote;
	// MaxBufferedBytes is its peak working set (always <= the cap);
	// BytesSpilled is the total run bytes written to the temp file.
	SpillRuns        int
	MaxBufferedBytes int64
	BytesSpilled     int64

	Duration time.Duration
}

func (c *Config) progress(stage string, done, total int64) {
	if c.Progress != nil {
		c.Progress(stage, done, total)
	}
}

// Ingest runs the full preprocessing pipeline and writes a dataset
// directory: dictionary, relabeling, external bucket sort of the edge
// stream, feature/label/split shards, and the checksummed manifest.
func Ingest(cfg Config) (*Stats, error) {
	start := time.Now()
	if cfg.Task != "nc" && cfg.Task != "lp" {
		return nil, fmt.Errorf("dataset: %w: task %q (want nc or lp)", ErrBadInput, cfg.Task)
	}
	if cfg.Out == "" || cfg.Edges == "" {
		return nil, fmt.Errorf("dataset: %w: output directory and edge list are required", ErrBadInput)
	}
	if cfg.Partitions <= 0 {
		return nil, fmt.Errorf("dataset: %w: partitions must be positive", ErrBadInput)
	}
	quant, err := tensor.ParseQuant(cfg.Quantize)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w: %v", ErrBadInput, err)
	}
	if quant != tensor.QuantNone && cfg.Features == "" {
		return nil, fmt.Errorf("dataset: %w: -quantize=%s needs a feature table (learnable LP embeddings stay float32)",
			ErrBadInput, cfg.Quantize)
	}
	if cfg.MemLimit <= 0 {
		cfg.MemLimit = DefaultMemLimit
	}
	if err := os.MkdirAll(cfg.Out, 0o755); err != nil {
		return nil, err
	}
	fsys := fault.Or(cfg.FS)
	// A directory holding payload files without a manifest is the
	// signature of a prep that died midway (the manifest is written
	// last). Refuse to silently mix old partial files with new output;
	// Force sweeps the wreckage and starts clean.
	if partial, present := partialOutput(cfg.Out); partial {
		if !cfg.Force {
			return nil, fmt.Errorf("dataset: %w: %s holds %d payload file(s) (e.g. %s) but no manifest; re-run with -force to sweep and re-ingest",
				ErrPartialOutput, cfg.Out, len(present), present[0])
		}
		if _, err := sweepPartial(cfg.Out); err != nil {
			return nil, err
		}
		if cfg.TmpDir != "" && cfg.TmpDir != cfg.Out {
			if _, err := SweepTemps(cfg.TmpDir); err != nil {
				return nil, err
			}
		}
	}
	// Invalidate any previous dataset in the target directory up front:
	// the manifest is written last, so a prep that dies midway must not
	// leave a stale manifest describing a mix of old and new payload
	// files (sizes can coincide, so OpenDataset's size check alone would
	// not catch it).
	if err := os.Remove(filepath.Join(cfg.Out, storage.ManifestName)); err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	tmp := cfg.TmpDir
	if tmp == "" {
		tmp = cfg.Out
	}

	// Stage 1: node dictionary (and labels, when the nodes file carries
	// them). With an explicit nodes file the dictionary is sealed:
	// unknown IDs anywhere else are errors. Without one, internal IDs
	// are assigned first-seen across splits, then edge files.
	d := newDict()
	sealed := cfg.Nodes != ""
	var labels []int32
	if sealed {
		cfg.progress("dictionary", 0, -1)
		if labels, err = readNodesFile(cfg.Nodes, d); err != nil {
			return nil, err
		}
	}
	trainD, err := readNodeList(cfg.TrainNodes, d, sealed)
	if err != nil {
		return nil, err
	}
	validD, err := readNodeList(cfg.ValidNodes, d, sealed)
	if err != nil {
		return nil, err
	}
	testD, err := readNodeList(cfg.TestNodes, d, sealed)
	if err != nil {
		return nil, err
	}
	if !sealed {
		cfg.progress("dictionary", 0, -1)
		addEndpoints := func(path string) error {
			if path == "" {
				return nil
			}
			return scanEdges(path, func(src, dst []byte, rel int32) error {
				d.add(src)
				d.add(dst)
				return nil
			})
		}
		for _, p := range []string{cfg.Edges, cfg.ValidEdges, cfg.TestEdges} {
			if err := addEndpoints(p); err != nil {
				return nil, err
			}
		}
	}
	n := d.len()
	if n == 0 {
		return nil, fmt.Errorf("dataset: %w: no nodes in input", ErrBadInput)
	}
	if n > math.MaxInt32 {
		return nil, fmt.Errorf("dataset: %w: %d nodes exceed the int32 ID space", ErrBadInput, n)
	}
	if cfg.Task == "nc" {
		if len(trainD) == 0 {
			return nil, fmt.Errorf("dataset: %w: node classification requires a train-nodes file", ErrBadInput)
		}
		// Every training node must carry a label: an unlabeled (-1)
		// train node would reach the classification loss as a bogus
		// class index mid-epoch.
		if labels == nil {
			return nil, fmt.Errorf("dataset: %w: node classification requires labels in the nodes file", ErrBadInput)
		}
		for _, id := range trainD {
			if labels[id] < 0 {
				return nil, fmt.Errorf("dataset: %w: train node %q has no label", ErrBadInput, d.raw[id])
			}
		}
	}

	// Stage 2: the seeded partition relabeling — the same call the
	// in-memory path (train.PrepareNC/PrepareLP) applies, so final node
	// IDs match it exactly. final[dictID] is the on-disk node ID.
	var final []int32
	if cfg.Task == "nc" {
		final = partition.TrainFirstOrder(n, trainD, cfg.Seed)
	} else {
		final = partition.RandomOrder(n, cfg.Seed)
	}
	pt := partition.New(n, cfg.Partitions)

	// Stage 3: stream the training edges through the external bucket
	// sort under the memory cap.
	maxEdges := int(cfg.MemLimit / edgeMemBytes)
	srt, err := newExtSorter(pt, maxEdges, tmp)
	if err != nil {
		return nil, err
	}
	defer srt.close()
	maxRel := int32(-1)
	var numEdges int64
	mapEdge := func(path string, src, dst []byte, rel int32) (graph.Edge, error) {
		s, ok := d.lookup(src)
		if !ok {
			return graph.Edge{}, fmt.Errorf("dataset: %w: %s: node %q not in the nodes file", ErrUnknownNode, path, src)
		}
		t, ok := d.lookup(dst)
		if !ok {
			return graph.Edge{}, fmt.Errorf("dataset: %w: %s: node %q not in the nodes file", ErrUnknownNode, path, dst)
		}
		if cfg.NumRels > 0 && int(rel) >= cfg.NumRels {
			return graph.Edge{}, fmt.Errorf("dataset: %w: %s: relation %d out of range [0,%d)", ErrBadInput, path, rel, cfg.NumRels)
		}
		if rel > maxRel {
			maxRel = rel
		}
		return graph.Edge{Src: final[s], Rel: rel, Dst: final[t]}, nil
	}
	cfg.progress("sort", 0, -1)
	err = scanEdges(cfg.Edges, func(src, dst []byte, rel int32) error {
		e, err := mapEdge(cfg.Edges, src, dst, rel)
		if err != nil {
			return err
		}
		numEdges++
		if numEdges%(1<<22) == 0 {
			cfg.progress("sort", numEdges, -1)
		}
		return srt.add(e)
	})
	if err != nil {
		return nil, err
	}
	cfg.progress("merge", 0, numEdges)
	counts, crcs, err := srt.merge(fsys, filepath.Join(cfg.Out, "edges.bin"))
	if err != nil {
		return nil, err
	}
	st := &Stats{
		NumNodes:         n,
		NumEdges:         numEdges,
		SpillRuns:        len(srt.runs),
		MaxBufferedBytes: int64(srt.peakEdges) * edgeMemBytes,
		BytesSpilled:     srt.spilled,
	}
	srt.close()

	// Unquantized datasets keep the original layout version (their UUIDs
	// hash it, and nothing in the layout changed for them); quantized
	// features need the bumped version so old readers fail typed.
	version := storage.DatasetVersionPlain
	if quant != tensor.QuantNone {
		version = storage.DatasetVersion
	}
	man := &storage.Manifest{
		Version:      version,
		Quant:        cfg.Quantize,
		Task:         cfg.Task,
		Seed:         cfg.Seed,
		Partitions:   cfg.Partitions,
		NumNodes:     n,
		NumEdges:     numEdges,
		BucketCounts: counts,
		BucketCRCs:   crcs,
		Edges:        storage.DatasetFile{Name: "edges.bin", Bytes: numEdges * edgeBytes},
		SpillRuns:    st.SpillRuns,
		MemLimit:     cfg.MemLimit,
	}

	// Stage 4: held-out edge shards (order preserved, remapped).
	writeHeldOut := func(path, name string) (*storage.DatasetFile, error) {
		if path == "" {
			return nil, nil
		}
		w, err := newCRCFile(fsys, filepath.Join(cfg.Out, name))
		if err != nil {
			return nil, err
		}
		var rec [edgeBytes]byte
		err = scanEdges(path, func(src, dst []byte, rel int32) error {
			e, err := mapEdge(path, src, dst, rel)
			if err != nil {
				return err
			}
			encodeEdge(e, rec[:])
			return w.write(rec[:])
		})
		if err != nil {
			w.abort()
			return nil, err
		}
		return w.finish(name)
	}
	if man.ValidEdges, err = writeHeldOut(cfg.ValidEdges, "valid_edges.bin"); err != nil {
		return nil, err
	}
	if man.TestEdges, err = writeHeldOut(cfg.TestEdges, "test_edges.bin"); err != nil {
		return nil, err
	}
	man.NumRels = int(maxRel) + 1
	if cfg.NumRels > 0 {
		man.NumRels = cfg.NumRels
	}
	if man.NumRels < 1 {
		man.NumRels = 1
	}
	// A multi-relation edge set bumps the layout version so relation-blind
	// readers fail typed instead of silently collapsing every edge onto
	// relation 0. Single-relation datasets keep their old version (and
	// therefore their UUIDs).
	if man.NumRels > 1 {
		man.Version = storage.DatasetVersionRelations
	}

	// Stage 5: node-level shards — splits, labels, features, dictionary
	// — all keyed by final node ID.
	writeSplit := func(ids []int32, name string) (*storage.DatasetFile, error) {
		if len(ids) == 0 {
			return nil, nil
		}
		w, err := newCRCFile(fsys, filepath.Join(cfg.Out, name))
		if err != nil {
			return nil, err
		}
		var rec [4]byte
		for _, id := range ids {
			binary.LittleEndian.PutUint32(rec[:], uint32(final[id]))
			if err := w.write(rec[:]); err != nil {
				w.abort()
				return nil, err
			}
		}
		return w.finish(name)
	}
	if man.TrainNodes, err = writeSplit(trainD, "train_nodes.bin"); err != nil {
		return nil, err
	}
	if man.ValidNodes, err = writeSplit(validD, "valid_nodes.bin"); err != nil {
		return nil, err
	}
	if man.TestNodes, err = writeSplit(testD, "test_nodes.bin"); err != nil {
		return nil, err
	}
	if labels != nil {
		maxLab := int32(-1)
		out := make([]int32, n)
		for dictID, lab := range labels {
			out[final[dictID]] = lab
			if lab > maxLab {
				maxLab = lab
			}
			if cfg.NumClasses > 0 && int(lab) >= cfg.NumClasses {
				return nil, fmt.Errorf("dataset: %w: label %d out of range [0,%d)", ErrBadInput, lab, cfg.NumClasses)
			}
		}
		w, err := newCRCFile(fsys, filepath.Join(cfg.Out, "labels.bin"))
		if err != nil {
			return nil, err
		}
		var rec [4]byte
		for _, lab := range out {
			binary.LittleEndian.PutUint32(rec[:], uint32(lab))
			if err := w.write(rec[:]); err != nil {
				w.abort()
				return nil, err
			}
		}
		if man.Labels, err = w.finish("labels.bin"); err != nil {
			return nil, err
		}
		man.NumClasses = int(maxLab) + 1
		if cfg.NumClasses > 0 {
			man.NumClasses = cfg.NumClasses
		}
	}
	if cfg.Features != "" {
		if man.Features, man.QuantScales, man.FeatureDim, err = reorderFeatures(fsys, cfg.Features, cfg.Out, n, cfg.FeatureDim, final, quant); err != nil {
			return nil, err
		}
	}
	if man.Dict, err = writeDict(fsys, cfg.Out, d, final); err != nil {
		return nil, err
	}

	// Identity fingerprint last: every field it covers is final by now.
	// Checkpoints trained on this dataset embed it, letting serving warn
	// on checkpoint/dataset provenance mismatches.
	man.UUID = man.ComputeUUID()
	if err := storage.WriteManifestFS(cfg.FS, cfg.Out, man); err != nil {
		return nil, err
	}
	st.NumRels = man.NumRels
	st.NumClasses = man.NumClasses
	st.Duration = time.Since(start)
	cfg.progress("done", numEdges, numEdges)
	return st, nil
}

// crcFile writes a payload file while accumulating its size and IEEE
// CRC32 for the manifest: buffered writes tee into the hash. The file
// opens through the configured fault.FS, so crash injection can tear
// any payload write mid-ingest.
type crcFile struct {
	f fault.File
	h hash.Hash32
	w *bufio.Writer
	n int64
}

func newCRCFile(fsys fault.FS, path string) (*crcFile, error) {
	f, err := fsys.Create(path)
	if err != nil {
		return nil, err
	}
	h := crc32.NewIEEE()
	return &crcFile{f: f, h: h, w: bufio.NewWriterSize(io.MultiWriter(f, h), 1<<16)}, nil
}

func (c *crcFile) write(p []byte) error {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return err
}

func (c *crcFile) abort() {
	name := c.f.Name()
	c.f.Close()
	os.Remove(name)
}

// finish flushes, closes, and returns the manifest entry.
func (c *crcFile) finish(name string) (*storage.DatasetFile, error) {
	if err := c.w.Flush(); err != nil {
		c.abort()
		return nil, err
	}
	if err := c.f.Close(); err != nil {
		return nil, err
	}
	return &storage.DatasetFile{Name: name, Bytes: c.n, CRC32: c.h.Sum32()}, nil
}

// reorderFeatures rewrites the raw feature table (rows in dictionary
// order) into features.bin (rows in final node-ID order, the
// DiskNodeStore table layout), one row at a time, quantizing each row
// when a quantized encoding is selected (int8 additionally streams the
// per-row (scale, zero) pairs into the features.scale.bin sidecar, in
// the same final order). A final sequential pass computes the shard
// checksums. dim 0 infers the dimensionality from the file size; an
// explicit dim demands an exact size match.
func reorderFeatures(fsys fault.FS, src, outDir string, n, dim int, final []int32, quant tensor.QuantKind) (feat, scales *storage.DatasetFile, featDim int, err error) {
	in, err := os.Open(src)
	if err != nil {
		return nil, nil, 0, err
	}
	defer in.Close()
	info, err := in.Stat()
	if err != nil {
		return nil, nil, 0, err
	}
	if dim > 0 {
		if want := int64(n) * int64(dim) * 4; info.Size() != want {
			return nil, nil, 0, fmt.Errorf("dataset: %w: feature file %s is %d bytes, %d nodes x %d dims need %d",
				ErrBadInput, src, info.Size(), n, dim, want)
		}
	} else {
		if info.Size()%(int64(n)*4) != 0 || info.Size() == 0 {
			return nil, nil, 0, fmt.Errorf("dataset: %w: feature file %s is %d bytes, not a positive multiple of 4x%d nodes",
				ErrBadInput, src, info.Size(), n)
		}
		dim = int(info.Size() / (int64(n) * 4))
	}
	rowBytes := int64(dim) * 4
	// Iterate in output (final node-ID) order: source rows are read at
	// random offsets (page-cache friendly — the file is visited exactly
	// once), while the output streams sequentially through the buffered
	// CRC writer, so no second checksum pass is needed.
	dictOf := make([]int32, n)
	for dictID, f := range final {
		dictOf[f] = int32(dictID)
	}
	w, err := newCRCFile(fsys, filepath.Join(outDir, "features.bin"))
	if err != nil {
		return nil, nil, 0, err
	}
	var sw *crcFile
	if quant == tensor.QuantI8 {
		if sw, err = newCRCFile(fsys, filepath.Join(outDir, "features.scale.bin")); err != nil {
			w.abort()
			return nil, nil, 0, err
		}
	}
	abort := func() {
		w.abort()
		if sw != nil {
			sw.abort()
		}
	}
	row := make([]byte, rowBytes)
	var (
		vals []float32
		qrow *tensor.QTable
		pair [8]byte
	)
	if quant != tensor.QuantNone {
		vals = make([]float32, dim)
		qrow = tensor.NewQTable(quant, 1, dim)
	}
	for f := 0; f < n; f++ {
		if _, err := in.ReadAt(row, int64(dictOf[f])*rowBytes); err != nil {
			abort()
			return nil, nil, 0, fmt.Errorf("dataset: read feature row %d: %w", dictOf[f], err)
		}
		out := row
		if quant != tensor.QuantNone {
			for i := range vals {
				vals[i] = math.Float32frombits(binary.LittleEndian.Uint32(row[i*4:]))
			}
			qrow.QuantizeRow(0, vals)
			out = qrow.Raw
		}
		if err := w.write(out); err != nil {
			abort()
			return nil, nil, 0, err
		}
		if sw != nil {
			binary.LittleEndian.PutUint32(pair[:4], math.Float32bits(qrow.Scale[0]))
			binary.LittleEndian.PutUint32(pair[4:], math.Float32bits(qrow.Zero[0]))
			if err := sw.write(pair[:]); err != nil {
				abort()
				return nil, nil, 0, err
			}
		}
	}
	if feat, err = w.finish("features.bin"); err != nil {
		if sw != nil {
			sw.abort()
		}
		return nil, nil, 0, err
	}
	if sw != nil {
		if scales, err = sw.finish("features.scale.bin"); err != nil {
			return nil, nil, 0, err
		}
	}
	return feat, scales, dim, nil
}

// writeDict writes dict.tsv: line k is the raw source ID of final node
// ID k.
func writeDict(fsys fault.FS, outDir string, d *dict, final []int32) (*storage.DatasetFile, error) {
	rawOf := make([]string, d.len())
	for dictID, raw := range d.raw {
		rawOf[final[dictID]] = raw
	}
	w, err := newCRCFile(fsys, filepath.Join(outDir, "dict.tsv"))
	if err != nil {
		return nil, err
	}
	for _, raw := range rawOf {
		if err := w.write([]byte(raw)); err != nil {
			w.abort()
			return nil, err
		}
		if err := w.write([]byte{'\n'}); err != nil {
			w.abort()
			return nil, err
		}
	}
	return w.finish("dict.tsv")
}

// ErrCorrupt aliases storage.ErrCorruptDataset so callers can match
// dataset and storage corruption errors through one import.
var ErrCorrupt = storage.ErrCorruptDataset
