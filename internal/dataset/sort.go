package dataset

import (
	"fmt"
	"hash/crc32"
	"os"

	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/storage"
)

// The on-disk edge layout is owned by the storage package; using its
// exported constant and encoder keeps the preprocessor byte-compatible
// with DiskEdgeStore by construction.
const edgeBytes = storage.EdgeBytes

func encodeEdge(e graph.Edge, buf []byte) { storage.EncodeEdge(e, buf) }

// extSorter is the memory-bounded external bucket sort at the heart of
// ingestion: edges stream in (already relabeled to final node IDs), are
// buffered up to a fixed edge budget, and every full buffer is stable
// counting-sorted by edge bucket and appended to a spill file as one
// *run*. The merge pass concatenates the runs' per-bucket segments in
// run order, which restores the exact global input order within every
// bucket — the same order partition.Partitioning.Buckets preserves — so
// an ingested dataset trains identically to the in-memory graph it came
// from. Peak memory is the edge buffer plus the encode buffer
// (edgeMemBytes per buffered edge), never the full edge list.
type extSorter struct {
	pt       partition.Partitioning
	maxEdges int
	buf      []graph.Edge
	enc      []byte // one run's encoded bytes, bucket-grouped

	spill *os.File // runs appended back to back
	runs  [][]int64

	peakEdges int
	spilled   int64
}

// edgeMemBytes is the sorter's working-set cost per buffered edge: the
// 12-byte in-memory edge plus its 12-byte encoded copy in the run buffer.
const edgeMemBytes = 2 * edgeBytes

// newExtSorter returns a sorter spilling to a temp file under tmpDir,
// buffering at most maxEdges edges.
func newExtSorter(pt partition.Partitioning, maxEdges int, tmpDir string) (*extSorter, error) {
	if maxEdges < 1 {
		maxEdges = 1
	}
	f, err := os.CreateTemp(tmpDir, "mariusprep-spill-*")
	if err != nil {
		return nil, err
	}
	return &extSorter{pt: pt, maxEdges: maxEdges, spill: f,
		buf: make([]graph.Edge, 0, maxEdges)}, nil
}

// close releases the spill file.
func (s *extSorter) close() {
	if s.spill != nil {
		name := s.spill.Name()
		s.spill.Close()
		os.Remove(name)
		s.spill = nil
	}
}

// add buffers one edge, spilling a run when the budget fills.
func (s *extSorter) add(e graph.Edge) error {
	s.buf = append(s.buf, e)
	if len(s.buf) > s.peakEdges {
		s.peakEdges = len(s.buf)
	}
	if len(s.buf) >= s.maxEdges {
		return s.spillRun()
	}
	return nil
}

// encodeRun stable counting-sorts the buffer by bucket directly into
// the encode buffer (the run's byte image, bucket-grouped) and resets
// the buffer. Returns the run's per-bucket counts and encoded bytes
// (valid until the next encodeRun).
func (s *extSorter) encodeRun() (counts []int64, enc []byte) {
	p := s.pt.NumPartitions
	counts = make([]int64, p*p)
	for _, e := range s.buf {
		i, j := s.pt.Bucket(e)
		counts[s.pt.BucketID(i, j)]++
	}
	// Byte cursor per bucket within this run (prefix sums), then place
	// each edge at its bucket cursor.
	cur := make([]int64, p*p)
	var off int64
	for b, c := range counts {
		cur[b] = off
		off += c * edgeBytes
	}
	if cap(s.enc) < int(off) {
		s.enc = make([]byte, off)
	}
	enc = s.enc[:off]
	for _, e := range s.buf {
		i, j := s.pt.Bucket(e)
		b := s.pt.BucketID(i, j)
		encodeEdge(e, enc[cur[b]:])
		cur[b] += edgeBytes
	}
	s.buf = s.buf[:0]
	return counts, enc
}

// spillRun sorts the buffer and appends it to the spill file as one run.
func (s *extSorter) spillRun() error {
	if len(s.buf) == 0 {
		return nil
	}
	counts, enc := s.encodeRun()
	if _, err := s.spill.Write(enc); err != nil {
		return fmt.Errorf("dataset: spill run %d: %w", len(s.runs), err)
	}
	s.runs = append(s.runs, counts)
	s.spilled += int64(len(enc))
	return nil
}

// merge flushes the final run and assembles the bucket-sorted output
// file: for each run in order, each bucket's segment is copied to its
// final position, so bucket b's edges end up in global input order.
// Returns the total per-bucket counts and the per-bucket CRC32 of the
// output bytes.
func (s *extSorter) merge(fsys fault.FS, outPath string) (counts []int64, crcs []uint32, err error) {
	p := s.pt.NumPartitions
	if len(s.runs) == 0 {
		// Everything fit in one buffered run: sort once and stream it
		// straight to the output file, skipping the spill round trip.
		// The encoded image is already bucket-grouped in final order.
		counts, enc := s.encodeRun()
		crcs = make([]uint32, p*p)
		var off int64
		for b, c := range counts {
			crcs[b] = crc32.ChecksumIEEE(enc[off : off+c*edgeBytes])
			off += c * edgeBytes
		}
		out, err := fsys.Create(outPath)
		if err != nil {
			return nil, nil, err
		}
		if _, err := out.Write(enc); err != nil {
			out.Close()
			return nil, nil, fmt.Errorf("dataset: write %s: %w", outPath, err)
		}
		return counts, crcs, out.Close()
	}
	if err := s.spillRun(); err != nil {
		return nil, nil, err
	}
	counts = make([]int64, p*p)
	for _, rc := range s.runs {
		for b, c := range rc {
			counts[b] += c
		}
	}
	crcs = make([]uint32, p*p)
	// Next write position per bucket (bytes), advanced as segments land.
	pos := make([]int64, p*p)
	var off int64
	for b, c := range counts {
		pos[b] = off
		off += c * edgeBytes
	}
	out, err := fsys.Create(outPath)
	if err != nil {
		return nil, nil, err
	}
	defer func() {
		if cerr := out.Close(); err == nil {
			err = cerr
		}
	}()
	// Copy run by run (sequential spill reads, one bounded buffer). The
	// per-bucket CRCs accumulate in write order, which is final file
	// order for each bucket.
	cb := make([]byte, 1<<20)
	var runOff int64
	for _, rc := range s.runs {
		for b, c := range rc {
			for rem := c * edgeBytes; rem > 0; {
				n := int64(len(cb))
				if rem < n {
					n = rem
				}
				if _, err := s.spill.ReadAt(cb[:n], runOff); err != nil {
					return nil, nil, fmt.Errorf("dataset: read spill run: %w", err)
				}
				if _, err := out.WriteAt(cb[:n], pos[b]); err != nil {
					return nil, nil, fmt.Errorf("dataset: write bucket %d: %w", b, err)
				}
				crcs[b] = crc32.Update(crcs[b], crc32.IEEETable, cb[:n])
				pos[b] += n
				runOff += n
				rem -= n
			}
		}
	}
	return counts, crcs, nil
}
