// Crash recovery for interrupted preps. Ingest writes payload files
// first and the manifest last, so a prep that dies midway leaves
// payload files with no manifest — an unambiguous partial-output
// signature. Re-running Ingest over such a directory fails typed
// (ErrPartialOutput) unless Config.Force is set, which sweeps the
// partial payload and leftover spill temps and re-ingests from scratch.
package dataset

import (
	"errors"
	"os"
	"path/filepath"

	"repro/internal/storage"
)

// ErrPartialOutput marks an output directory holding payload files but
// no manifest: a previous prep died midway through writing it. Passing
// Config.Force (mariusprep prep -force) sweeps the partial output and
// re-ingests.
var ErrPartialOutput = errors.New("partial dataset output from an interrupted prep")

// tempPatterns are the scratch-file globs a crashed prep can leave
// behind: external-sort spill files and half-written atomic-manifest
// temps.
var tempPatterns = []string{"mariusprep-spill-*", ".manifest-*"}

// payloadNames are every payload file Ingest can write. The manifest is
// deliberately absent: it is the commit record whose presence
// distinguishes a complete dataset from a partial one.
var payloadNames = []string{
	"edges.bin", "valid_edges.bin", "test_edges.bin",
	"train_nodes.bin", "valid_nodes.bin", "test_nodes.bin",
	"labels.bin", "features.bin", "features.scale.bin", "dict.tsv",
}

// partialOutput reports whether dir looks like an interrupted prep:
// payload files present without a manifest. A directory with a manifest
// is a complete dataset (re-ingesting over it is a deliberate,
// supported overwrite); an empty directory is a fresh target.
func partialOutput(dir string) (partial bool, present []string) {
	if _, err := os.Stat(filepath.Join(dir, storage.ManifestName)); err == nil {
		return false, nil
	}
	for _, name := range payloadNames {
		if _, err := os.Stat(filepath.Join(dir, name)); err == nil {
			present = append(present, name)
		}
	}
	return len(present) > 0, present
}

// sweepPartial removes the partial payload files and temp scraps a
// crashed prep left in dir, returning what it removed.
func sweepPartial(dir string) (removed []string, err error) {
	for _, name := range payloadNames {
		p := filepath.Join(dir, name)
		if rmErr := os.Remove(p); rmErr == nil {
			removed = append(removed, name)
		} else if !os.IsNotExist(rmErr) {
			return removed, rmErr
		}
	}
	swept, err := SweepTemps(dir)
	return append(removed, swept...), err
}

// SweepTemps removes leftover prep scratch files (external-sort spills,
// atomic-manifest temps) from dir, returning the removed base names.
// Safe on a live dataset: completed preps never leave these behind.
func SweepTemps(dir string) (removed []string, err error) {
	orphans, err := OrphanedTemps(dir)
	if err != nil {
		return nil, err
	}
	for _, name := range orphans {
		if rmErr := os.Remove(filepath.Join(dir, name)); rmErr != nil && !os.IsNotExist(rmErr) {
			return removed, rmErr
		}
		removed = append(removed, name)
	}
	return removed, nil
}

// OrphanedTemps lists prep scratch files left in dir by a crashed or
// killed prep, as base names. mariusprep validate surfaces them as a
// warning: they are harmless to readers but waste space and mark an
// ingest that never completed in this directory.
func OrphanedTemps(dir string) ([]string, error) {
	var names []string
	for _, pat := range tempPatterns {
		matches, err := filepath.Glob(filepath.Join(dir, pat))
		if err != nil {
			return nil, err
		}
		for _, m := range matches {
			names = append(names, filepath.Base(m))
		}
	}
	return names, nil
}
