package dataset_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/storage"
	"repro/internal/tensor"
	"repro/marius"
)

// ingestQuant exports the NC fixture once and ingests it with the given
// feature encoding ("" = float32), returning the prepared directory.
func ingestQuant(t *testing.T, quantize string) string {
	t.Helper()
	exp, err := dataset.Export(gen.SBM(smallSBM()), t.TempDir(), "tsv")
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	out := t.TempDir()
	cfg := exp.Config(out, "nc", 7, 4)
	cfg.Quantize = quantize
	if _, err := dataset.Ingest(cfg); err != nil {
		t.Fatalf("ingest(%q): %v", quantize, err)
	}
	return out
}

// TestQuantRoundTrip is the storage-fidelity contract for quantized
// ingest: the bytes on disk must be exactly what tensor.Quantize produces
// from the float32 table, and every read path — full load, compressed
// load, partition-paged disk store — must dequantize to the same float32
// values bit-for-bit (quantization rounds once at ingest; reads never
// re-round).
func TestQuantRoundTrip(t *testing.T) {
	f32Dir := ingestQuant(t, "")
	f32DS, err := storage.OpenDataset(f32Dir)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := f32DS.ReadFeatures()
	if err != nil {
		t.Fatal(err)
	}

	for _, mode := range []string{"fp16", "int8"} {
		t.Run(mode, func(t *testing.T) {
			kind, err := tensor.ParseQuant(mode)
			if err != nil {
				t.Fatal(err)
			}
			dir := ingestQuant(t, mode)
			if _, err := dataset.Validate(dir); err != nil {
				t.Fatalf("validate: %v", err)
			}
			ds, err := storage.OpenDataset(dir)
			if err != nil {
				t.Fatal(err)
			}
			if ds.Man.Version != storage.DatasetVersion {
				t.Errorf("quantized manifest version = %d, want %d", ds.Man.Version, storage.DatasetVersion)
			}
			if ds.Man.QuantKind() != kind {
				t.Errorf("manifest quant = %q, want %q", ds.Man.Quant, mode)
			}

			// On-disk bytes are exactly the in-memory quantizer's output.
			want := tensor.Quantize(ref, kind)
			q, err := ds.ReadQuantFeatures()
			if err != nil {
				t.Fatalf("ReadQuantFeatures: %v", err)
			}
			if !bytes.Equal(q.Raw, want.Raw) {
				t.Fatal("quantized feature bytes differ from tensor.Quantize of the float32 table")
			}
			for i := range want.Scale {
				if q.Scale[i] != want.Scale[i] || q.Zero[i] != want.Zero[i] {
					t.Fatalf("row %d sidecar (scale,zero) = (%v,%v), want (%v,%v)",
						i, q.Scale[i], q.Zero[i], want.Scale[i], want.Zero[i])
				}
			}

			// Full in-memory load dequantizes to the reference exactly.
			wantF32 := tensor.RefDequant(want)
			got, err := ds.ReadFeatures()
			if err != nil {
				t.Fatal(err)
			}
			if got.Rows != wantF32.Rows || got.Cols != wantF32.Cols {
				t.Fatalf("ReadFeatures shape %dx%d, want %dx%d", got.Rows, got.Cols, wantF32.Rows, wantF32.Cols)
			}
			for i := range wantF32.Data {
				if got.Data[i] != wantF32.Data[i] {
					t.Fatalf("ReadFeatures[%d] = %v, want %v", i, got.Data[i], wantF32.Data[i])
				}
			}

			// The partition-paged disk store dequantizes on load to the
			// same values.
			ns, err := ds.NodeStore(2, nil)
			if err != nil {
				t.Fatalf("NodeStore: %v", err)
			}
			defer ns.Close()
			all, err := ns.ReadAll()
			if err != nil {
				t.Fatalf("ReadAll: %v", err)
			}
			for i := range wantF32.Data {
				if all.Data[i] != wantF32.Data[i] {
					t.Fatalf("disk store ReadAll[%d] = %v, want %v", i, all.Data[i], wantF32.Data[i])
				}
			}

			// Gather through loaded partitions matches RefGatherDequant.
			if err := ns.LoadSet([]int{0, 1}); err != nil {
				t.Fatalf("LoadSet: %v", err)
			}
			pt := ds.Partitioning()
			lo0, _ := pt.Range(0)
			lo1, hi1 := pt.Range(1)
			ids := []int32{lo0, lo1, hi1 - 1, lo0 + 1}
			out := tensor.New(len(ids), ds.Man.FeatureDim)
			if err := ns.Gather(ids, out); err != nil {
				t.Fatalf("Gather: %v", err)
			}
			wantG := tensor.RefGatherDequant(want, ids)
			for i := range wantG.Data {
				if out.Data[i] != wantG.Data[i] {
					t.Fatalf("Gather[%d] = %v, want RefGatherDequant %v", i, out.Data[i], wantG.Data[i])
				}
			}

			// The quantized store is read-only.
			if err := ns.Restore(wantF32, nil); err == nil {
				t.Fatal("Restore into a quantized store succeeded, want error")
			}
		})
	}
}

// TestQuantIngestDeterministic re-ingests the same export with the same
// encoding and demands identical manifests (UUID, CRCs): quantization is
// part of the dataset's identity, not a per-run transformation.
func TestQuantIngestDeterministic(t *testing.T) {
	a := ingestQuant(t, "fp16")
	b := ingestQuant(t, "fp16")
	ma, err := storage.ReadManifest(a)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := storage.ReadManifest(b)
	if err != nil {
		t.Fatal(err)
	}
	if ma.UUID != mb.UUID {
		t.Errorf("UUIDs differ across identical ingests: %s vs %s", ma.UUID, mb.UUID)
	}
	if ma.Features.CRC32 != mb.Features.CRC32 {
		t.Errorf("feature CRCs differ across identical ingests")
	}
	fa, _ := os.ReadFile(filepath.Join(a, ma.Features.Name))
	fb, _ := os.ReadFile(filepath.Join(b, mb.Features.Name))
	if !bytes.Equal(fa, fb) {
		t.Error("quantized feature bytes differ across identical ingests")
	}

	// A quantized dataset must not collide with the float32 dataset's
	// identity: the UUID folds in the encoding.
	f32, err := storage.ReadManifest(ingestQuant(t, ""))
	if err != nil {
		t.Fatal(err)
	}
	if f32.UUID == ma.UUID {
		t.Error("fp16 and float32 datasets share a UUID")
	}
	if f32.Version != storage.DatasetVersionPlain {
		t.Errorf("unquantized manifest version = %d, want %d (plain datasets stay readable by old builds)",
			f32.Version, storage.DatasetVersionPlain)
	}
}

// TestQuantTrainDeterministic trains from a quantized dataset at two
// worker counts and demands byte-identical trajectories — dequantization
// happens once per partition load, so parallelism cannot reorder any
// floating-point reduction — and that the loss lands near the float32
// run (storage rounding perturbs inputs, not the learning dynamics).
func TestQuantTrainDeterministic(t *testing.T) {
	const seed, epochs = int64(7), 2
	dir := ingestQuant(t, "fp16")
	opts := func(workers int) []marius.Option {
		return []marius.Option{
			marius.WithSeed(seed), marius.WithPartitions(4),
			marius.WithDim(8), marius.WithFanouts(4, 4),
			marius.WithBatchSize(128), marius.WithWorkers(workers),
		}
	}
	s1, err := marius.FromDataset(dir, opts(1)...)
	if err != nil {
		t.Fatalf("workers=1 session: %v", err)
	}
	defer s1.Close()
	s4, err := marius.FromDataset(dir, opts(4)...)
	if err != nil {
		t.Fatalf("workers=4 session: %v", err)
	}
	defer s4.Close()
	l1 := trainLosses(t, s1, epochs)
	l4 := trainLosses(t, s4, epochs)
	for i := range l1 {
		if l1[i] != l4[i] {
			t.Fatalf("epoch %d loss diverged across worker counts: %v vs %v", i, l1[i], l4[i])
		}
	}
	if !bytes.Equal(checkpointBytes(t, s1), checkpointBytes(t, s4)) {
		t.Fatal("checkpoints differ across worker counts on a quantized dataset")
	}

	// Float32 baseline at the same seed: fp16 storage rounding should
	// move a converging loss by fractions of a percent, not wreck it.
	f32, err := marius.FromDataset(ingestQuant(t, ""), opts(1)...)
	if err != nil {
		t.Fatal(err)
	}
	defer f32.Close()
	lf := trainLosses(t, f32, epochs)
	last, ref := l1[len(l1)-1], lf[len(lf)-1]
	if diff := last - ref; diff < -0.05*ref || diff > 0.05*ref {
		t.Errorf("fp16 final loss %v strays more than 5%% from float32 %v", last, ref)
	}
}

// TestQuantCorruption covers the typed corruption and versioning
// contract for quantized shards: truncation is caught at open, a damaged
// sidecar is caught by validate as a *storage.CorruptError naming
// features.scale.bin, and a version-1 manifest claiming quantization is
// refused.
func TestQuantCorruption(t *testing.T) {
	dir := ingestQuant(t, "int8")
	man, err := storage.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	featPath := filepath.Join(dir, man.Features.Name)
	scalePath := filepath.Join(dir, man.QuantScales.Name)

	// Truncated quantized payload: the exact-size check at open fires.
	feat, err := os.ReadFile(featPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(featPath, feat[:len(feat)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := storage.OpenDataset(dir); !errors.Is(err, storage.ErrCorruptDataset) {
		t.Fatalf("open of truncated quantized features: got %v, want ErrCorruptDataset", err)
	}
	if err := os.WriteFile(featPath, feat, 0o644); err != nil {
		t.Fatal(err)
	}

	// Bit flip in the int8 scale sidecar: size-valid, so the checksum
	// pass catches it and must name the file.
	scales, err := os.ReadFile(scalePath)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), scales...)
	bad[len(bad)/2] ^= 0xFF
	if err := os.WriteFile(scalePath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	var ce *storage.CorruptError
	if _, err := dataset.Validate(dir); !errors.As(err, &ce) || ce.Path != man.QuantScales.Name {
		t.Fatalf("validate of corrupt scale sidecar: got %v, want CorruptError on %s", err, man.QuantScales.Name)
	}
	if err := os.WriteFile(scalePath, scales, 0o644); err != nil {
		t.Fatal(err)
	}

	// A version-1 manifest cannot claim quantization: version 1 is the
	// pre-quantization format old readers interpret as float32.
	man.Version = storage.DatasetVersionPlain
	if err := storage.WriteManifest(dir, man); err != nil {
		t.Fatal(err)
	}
	if _, err := storage.OpenDataset(dir); !errors.Is(err, storage.ErrDatasetVersion) {
		t.Fatalf("open of v1 manifest with quant: got %v, want ErrDatasetVersion", err)
	}

	// Quantization without features is rejected at ingest: link
	// prediction's learnable embeddings stay float32.
	exp, err := dataset.Export(gen.KG(smallKG()), t.TempDir(), "tsv")
	if err != nil {
		t.Fatal(err)
	}
	cfg := exp.Config(t.TempDir(), "lp", 3, 4)
	cfg.Quantize = "fp16"
	if _, err := dataset.Ingest(cfg); !errors.Is(err, dataset.ErrBadInput) {
		t.Fatalf("quantized LP ingest: got %v, want ErrBadInput", err)
	}

	// An unknown encoding is rejected up front.
	cfg2 := exp.Config(t.TempDir(), "lp", 3, 4)
	cfg2.Quantize = "fp8"
	if _, err := dataset.Ingest(cfg2); !errors.Is(err, dataset.ErrBadInput) {
		t.Fatalf("unknown quantize mode: got %v, want ErrBadInput", err)
	}
}
