package dataset

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
)

// Typed input errors, matchable with errors.Is.
var (
	// ErrBadInput is returned for malformed raw input files (unparseable
	// lines, wrong field counts, out-of-range values).
	ErrBadInput = errors.New("malformed input")
	// ErrUnknownNode is returned when an edge or split references a node
	// absent from the node dictionary (only possible with an explicit
	// nodes file; first-seen dictionaries admit every endpoint).
	ErrUnknownNode = errors.New("unknown node")
)

func badInput(path string, line int64, detail string, args ...any) error {
	return fmt.Errorf("dataset: %w: %s:%d: %s", ErrBadInput, path, line, fmt.Sprintf(detail, args...))
}

// dict maps raw source node IDs to dense internal IDs in assignment
// order. Raw IDs are arbitrary byte strings (TSV/CSV fields, or the
// decimal form of binary int32 IDs).
type dict struct {
	ids map[string]int32
	raw []string // raw ID per internal ID
}

func newDict() *dict { return &dict{ids: make(map[string]int32)} }

func (d *dict) len() int { return len(d.raw) }

// lookup returns the internal ID of raw (no allocation on hit).
func (d *dict) lookup(raw []byte) (int32, bool) {
	id, ok := d.ids[string(raw)]
	return id, ok
}

// add returns raw's internal ID, assigning the next dense ID on first
// sight.
func (d *dict) add(raw []byte) int32 {
	if id, ok := d.ids[string(raw)]; ok {
		return id
	}
	id := int32(len(d.raw))
	s := string(raw)
	d.ids[s] = id
	d.raw = append(d.raw, s)
	return id
}

// edgeFormat selects the raw edge-list encoding.
type edgeFormat int

const (
	formatWS  edgeFormat = iota // whitespace/tab-separated text (TSV)
	formatCSV                   // comma-separated text
	formatBin                   // packed 12-byte little-endian int32 triples
)

// formatOf infers the encoding from a file extension: .csv, .bin, and
// everything else (tsv/txt) as whitespace-separated text.
func formatOf(path string) edgeFormat {
	switch filepath.Ext(path) {
	case ".csv":
		return formatCSV
	case ".bin":
		return formatBin
	default:
		return formatWS
	}
}

// scanEdges streams the raw edge list at path, calling fn once per edge
// with the raw endpoint fields and the relation (0 when the file has two
// columns). Text lines hold "src dst" or "src rel dst"; empty lines and
// '#' comments are skipped. Binary files hold packed int32 triples whose
// endpoint IDs are presented in decimal form, so every format feeds one
// dictionary. fn's field slices are only valid during the call.
func scanEdges(path string, fn func(src, dst []byte, rel int32) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if formatOf(path) == formatBin {
		return scanBinEdges(path, f, fn)
	}
	sep := byte(0) // whitespace
	if formatOf(path) == formatCSV {
		sep = ','
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var line int64
	var fields [4][]byte
	for sc.Scan() {
		line++
		nf, err := splitFields(sc.Bytes(), sep, &fields)
		if err != nil {
			return badInput(path, line, "%v", err)
		}
		switch nf {
		case 0:
			continue // blank or comment
		case 2:
			if err := fn(fields[0], fields[1], 0); err != nil {
				return err
			}
		case 3:
			rel, err := strconv.ParseInt(string(fields[1]), 10, 32)
			if err != nil || rel < 0 {
				return badInput(path, line, "relation %q is not a non-negative integer", fields[1])
			}
			if err := fn(fields[0], fields[2], int32(rel)); err != nil {
				return err
			}
		default:
			return badInput(path, line, "%d fields, want 2 (src dst) or 3 (src rel dst)", nf)
		}
	}
	return sc.Err()
}

// splitFields splits a text line into at most 4 fields on sep (0 = any
// run of spaces/tabs), returning 0 fields for blanks and '#' comments.
func splitFields(b []byte, sep byte, out *[4][]byte) (int, error) {
	b = bytes.TrimSpace(b)
	if len(b) == 0 || b[0] == '#' {
		return 0, nil
	}
	n := 0
	for len(b) > 0 {
		if n == len(out) {
			return 0, fmt.Errorf("more than %d fields", len(out))
		}
		var i int
		if sep == 0 {
			i = bytes.IndexAny(b, " \t")
		} else {
			i = bytes.IndexByte(b, sep)
		}
		if i < 0 {
			out[n] = b
			n++
			break
		}
		out[n] = bytes.TrimSpace(b[:i])
		if len(out[n]) == 0 {
			if sep != 0 {
				return 0, fmt.Errorf("empty field")
			}
			b = b[i+1:]
			continue
		}
		n++
		b = bytes.TrimSpace(b[i+1:])
		if sep != 0 && len(b) == 0 {
			return 0, fmt.Errorf("trailing separator")
		}
	}
	return n, nil
}

// scanBinEdges streams packed little-endian (src, rel, dst) int32
// triples.
func scanBinEdges(path string, f *os.File, fn func(src, dst []byte, rel int32) error) error {
	r := bufio.NewReaderSize(f, 1<<20)
	var rec [edgeBytes]byte
	var srcBuf, dstBuf []byte
	var n int64
	for {
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			if err == io.ErrUnexpectedEOF {
				return fmt.Errorf("dataset: %w: %s: truncated record after %d edges", ErrBadInput, path, n)
			}
			return err
		}
		src := int32(uint32(rec[0]) | uint32(rec[1])<<8 | uint32(rec[2])<<16 | uint32(rec[3])<<24)
		rel := int32(uint32(rec[4]) | uint32(rec[5])<<8 | uint32(rec[6])<<16 | uint32(rec[7])<<24)
		dst := int32(uint32(rec[8]) | uint32(rec[9])<<8 | uint32(rec[10])<<16 | uint32(rec[11])<<24)
		if src < 0 || dst < 0 || rel < 0 {
			return fmt.Errorf("dataset: %w: %s: negative field in record %d", ErrBadInput, path, n)
		}
		srcBuf = strconv.AppendInt(srcBuf[:0], int64(src), 10)
		dstBuf = strconv.AppendInt(dstBuf[:0], int64(dst), 10)
		if err := fn(srcBuf, dstBuf, rel); err != nil {
			return err
		}
		n++
	}
}

// readNodesFile reads the node dictionary file: one raw node ID per
// line, optionally followed by an integer class label ("id" or
// "id<TAB>label"). Dictionary order is line order. Returns the labels
// slice (nil when no line carried a label; -1 for unlabeled nodes).
func readNodesFile(path string, d *dict) (labels []int32, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var line int64
	var fields [4][]byte
	for sc.Scan() {
		line++
		nf, err := splitFields(sc.Bytes(), 0, &fields)
		if err != nil {
			return nil, badInput(path, line, "%v", err)
		}
		if nf == 0 {
			continue
		}
		if nf > 2 {
			return nil, badInput(path, line, "%d fields, want 1 (id) or 2 (id label)", nf)
		}
		before := d.len()
		id := d.add(fields[0])
		if int(id) < before {
			return nil, badInput(path, line, "duplicate node %q", fields[0])
		}
		if nf == 2 {
			lab, err := strconv.ParseInt(string(fields[1]), 10, 32)
			if err != nil || lab < 0 {
				return nil, badInput(path, line, "label %q is not a non-negative integer", fields[1])
			}
			for len(labels) < int(id) {
				labels = append(labels, -1)
			}
			labels = append(labels, int32(lab))
		} else if labels != nil {
			labels = append(labels, -1)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for labels != nil && len(labels) < d.len() {
		labels = append(labels, -1)
	}
	return labels, nil
}

// readNodeList reads a split file (one raw node ID per line) into
// internal IDs, preserving line order. Unknown IDs are an ErrUnknownNode
// error when the dictionary is sealed (explicit nodes file), and are
// added to the dictionary otherwise.
func readNodeList(path string, d *dict, sealed bool) ([]int32, error) {
	if path == "" {
		return nil, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []int32
	var line int64
	var fields [4][]byte
	for sc.Scan() {
		line++
		nf, err := splitFields(sc.Bytes(), 0, &fields)
		if err != nil {
			return nil, badInput(path, line, "%v", err)
		}
		if nf == 0 {
			continue
		}
		if nf != 1 {
			return nil, badInput(path, line, "%d fields, want 1", nf)
		}
		if sealed {
			id, ok := d.lookup(fields[0])
			if !ok {
				return nil, fmt.Errorf("dataset: %w: %s:%d: node %q not in the nodes file",
					ErrUnknownNode, path, line, fields[0])
			}
			out = append(out, id)
		} else {
			out = append(out, d.add(fields[0]))
		}
	}
	return out, sc.Err()
}
