// Crash-mid-ingest recovery tests: a prep killed partway through its
// output writes leaves payload files without a manifest; re-running
// Ingest over that directory must fail typed (ErrPartialOutput) until
// Force sweeps the wreckage, after which the re-ingested dataset is
// identical to one prepared with no crash at all.
package dataset_test

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/storage"
)

// exportKG writes the link-prediction fixture as raw TSV files and
// returns the ingest config targeting out.
func exportKG(t *testing.T, out string, parts int) dataset.Config {
	t.Helper()
	g := gen.KG(smallKG())
	exp, err := dataset.Export(g, t.TempDir(), "tsv")
	if err != nil {
		t.Fatal(err)
	}
	return exp.Config(out, "lp", 3, parts)
}

func TestIngestCrashThenForceReingest(t *testing.T) {
	raw := exportKG(t, t.TempDir(), 4)

	// Reference: a clean ingest of the same inputs into a pristine
	// directory, for byte-comparison after recovery.
	cleanDir := t.TempDir()
	clean := raw
	clean.Out = cleanDir
	if _, err := dataset.Ingest(clean); err != nil {
		t.Fatal(err)
	}

	// Crash the prep partway through its output writes. The kill point
	// lands well inside the payload (edges.bin alone takes many writes),
	// so the directory is left with payload files and no manifest.
	crashDir := t.TempDir()
	crashed := raw
	crashed.Out = crashDir
	crashed.FS = fault.NewInjector(nil, fault.Config{Seed: 11, CrashAfterWrites: 3})
	if _, err := dataset.Ingest(crashed); !errors.Is(err, fault.ErrCrashed) {
		t.Fatalf("crashed ingest: got %v, want ErrCrashed", err)
	}
	if _, err := os.Stat(filepath.Join(crashDir, storage.ManifestName)); !os.IsNotExist(err) {
		t.Fatal("crashed ingest left a manifest; partial output would pass for complete")
	}
	if _, err := storage.OpenDataset(crashDir); err == nil {
		t.Fatal("OpenDataset accepted a crashed prep's directory")
	}

	// Re-running without Force refuses, typed, naming the situation.
	retry := raw
	retry.Out = crashDir
	if _, err := dataset.Ingest(retry); !errors.Is(err, dataset.ErrPartialOutput) {
		t.Fatalf("re-ingest over partial output: got %v, want ErrPartialOutput", err)
	}

	// Force sweeps and re-ingests; the result must match the clean run
	// byte for byte (manifest UUID included — same inputs, same seed).
	retry.Force = true
	if _, err := dataset.Ingest(retry); err != nil {
		t.Fatalf("forced re-ingest: %v", err)
	}
	if _, err := dataset.Validate(crashDir); err != nil {
		t.Fatalf("validate after forced re-ingest: %v", err)
	}
	for _, name := range []string{storage.ManifestName, "edges.bin", "valid_edges.bin", "test_edges.bin", "dict.tsv"} {
		a, err := os.ReadFile(filepath.Join(cleanDir, name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(crashDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Fatalf("%s differs between clean ingest and crash+force re-ingest", name)
		}
	}
	// No scratch files survive the recovery.
	if orphans, err := dataset.OrphanedTemps(crashDir); err != nil || len(orphans) != 0 {
		t.Fatalf("orphaned temps after forced re-ingest: %v (err %v)", orphans, err)
	}
}

// TestIngestOverCompleteDatasetStillAllowed: a directory with a
// manifest is a complete dataset, and overwriting it (deliberate
// re-prep) keeps working without Force.
func TestIngestOverCompleteDatasetStillAllowed(t *testing.T) {
	out := t.TempDir()
	cfg := exportKG(t, out, 4)
	if _, err := dataset.Ingest(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := dataset.Ingest(cfg); err != nil {
		t.Fatalf("re-ingest over a complete dataset: %v", err)
	}
	if _, err := dataset.Validate(out); err != nil {
		t.Fatal(err)
	}
}

// TestOrphanedTempsFlagged: scratch files from a killed prep are
// reported against an otherwise-valid dataset, and SweepTemps removes
// exactly them.
func TestOrphanedTempsFlagged(t *testing.T) {
	out := t.TempDir()
	cfg := exportKG(t, out, 4)
	if _, err := dataset.Ingest(cfg); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"mariusprep-spill-12345", ".manifest-777"} {
		if err := os.WriteFile(filepath.Join(out, name), []byte("stale"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	orphans, err := dataset.OrphanedTemps(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(orphans) != 2 {
		t.Fatalf("OrphanedTemps = %v, want both planted temps", orphans)
	}
	// The dataset itself stays valid — temps are a warning, not corruption.
	if _, err := dataset.Validate(out); err != nil {
		t.Fatalf("validate with orphaned temps: %v", err)
	}
	removed, err := dataset.SweepTemps(out)
	if err != nil || len(removed) != 2 {
		t.Fatalf("SweepTemps removed %v (err %v), want both temps", removed, err)
	}
	if orphans, _ := dataset.OrphanedTemps(out); len(orphans) != 0 {
		t.Fatalf("temps survive sweep: %v", orphans)
	}
	if _, err := dataset.Validate(out); err != nil {
		t.Fatalf("validate after sweep: %v", err)
	}
}
