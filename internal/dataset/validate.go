package dataset

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/storage"
)

// Validate runs the full dataset integrity suite on dir:
//
//  1. structural checks and exact file sizes (storage.OpenDataset),
//  2. per-bucket and per-file CRC32 checksums (storage.Dataset.Verify),
//  3. semantic checks: every edge decodes into the bucket that holds it,
//     relations/labels/splits are within their declared ranges.
//
// Truncated or corrupt payloads are reported as a typed
// *storage.CorruptError (errors.Is ErrCorrupt) naming the file — and for
// edge storage the bucket — that failed, instead of an opaque
// io.ErrUnexpectedEOF surfacing mid-epoch.
func Validate(dir string) (*storage.Dataset, error) {
	ds, err := storage.OpenDataset(dir)
	if err != nil {
		return nil, err
	}
	if err := ds.Verify(); err != nil {
		return nil, err
	}
	man := ds.Man
	pt := ds.Partitioning()

	// Semantic pass over the edge buckets through the same store the
	// trainers use.
	es, err := ds.EdgeStore(nil)
	if err != nil {
		return nil, err
	}
	defer es.Close()
	var buf []graph.Edge
	for i := 0; i < man.Partitions; i++ {
		for j := 0; j < man.Partitions; j++ {
			buf, err = es.ReadBucket(i, j, buf[:0])
			if err != nil {
				return nil, err
			}
			for _, e := range buf {
				// Range-check endpoints before bucket membership: the
				// last partition's ID range is not PartSize-aligned, so
				// an out-of-range (or negative) ID can still land in a
				// valid-looking bucket.
				if e.Src < 0 || int(e.Src) >= man.NumNodes || e.Dst < 0 || int(e.Dst) >= man.NumNodes {
					return nil, &storage.CorruptError{Path: man.Edges.Name, Bucket: [2]int{i, j},
						Detail: fmt.Sprintf("edge (%d,%d,%d) endpoint out of range [0,%d)",
							e.Src, e.Rel, e.Dst, man.NumNodes)}
				}
				if pt.Of(e.Src) != i || pt.Of(e.Dst) != j {
					return nil, &storage.CorruptError{Path: man.Edges.Name, Bucket: [2]int{i, j},
						Detail: fmt.Sprintf("edge (%d,%d,%d) belongs in bucket (%d,%d)",
							e.Src, e.Rel, e.Dst, pt.Of(e.Src), pt.Of(e.Dst))}
				}
				if e.Rel < 0 || int(e.Rel) >= man.NumRels {
					return nil, &storage.CorruptError{Path: man.Edges.Name, Bucket: [2]int{i, j},
						Detail: fmt.Sprintf("relation %d out of range [0,%d)", e.Rel, man.NumRels)}
				}
			}
		}
	}

	checkNodes := func(ids []int32, what string) error {
		for _, id := range ids {
			if id < 0 || int(id) >= man.NumNodes {
				return &storage.CorruptError{Path: what, Bucket: [2]int{-1, -1},
					Detail: fmt.Sprintf("node %d out of range [0,%d)", id, man.NumNodes)}
			}
		}
		return nil
	}
	train, valid, test, err := ds.ReadSplits()
	if err != nil {
		return nil, err
	}
	for _, s := range []struct {
		ids  []int32
		file *storage.DatasetFile
	}{{train, man.TrainNodes}, {valid, man.ValidNodes}, {test, man.TestNodes}} {
		if s.file != nil {
			if err := checkNodes(s.ids, s.file.Name); err != nil {
				return nil, err
			}
		}
	}
	labels, err := ds.ReadLabels()
	if err != nil {
		return nil, err
	}
	for v, lab := range labels {
		if lab >= 0 && man.NumClasses > 0 && int(lab) >= man.NumClasses {
			return nil, &storage.CorruptError{Path: man.Labels.Name, Bucket: [2]int{-1, -1},
				Detail: fmt.Sprintf("node %d label %d out of range [0,%d)", v, lab, man.NumClasses)}
		}
	}
	// Every NC training node must be labeled: a -1 would reach the
	// classification loss as a bogus class index mid-epoch.
	if man.Task == "nc" && man.Labels != nil {
		for _, id := range train {
			if labels[id] < 0 {
				return nil, &storage.CorruptError{Path: man.TrainNodes.Name, Bucket: [2]int{-1, -1},
					Detail: fmt.Sprintf("train node %d has no label", id)}
			}
		}
	}
	hv, ht, err := ds.ReadHeldOut()
	if err != nil {
		return nil, err
	}
	for _, h := range []struct {
		edges []graph.Edge
		file  *storage.DatasetFile
	}{{hv, man.ValidEdges}, {ht, man.TestEdges}} {
		if h.file == nil {
			continue
		}
		for _, e := range h.edges {
			if e.Src < 0 || int(e.Src) >= man.NumNodes || e.Dst < 0 || int(e.Dst) >= man.NumNodes ||
				e.Rel < 0 || int(e.Rel) >= man.NumRels {
				return nil, &storage.CorruptError{Path: h.file.Name, Bucket: [2]int{-1, -1},
					Detail: fmt.Sprintf("edge (%d,%d,%d) out of range", e.Src, e.Rel, e.Dst)}
			}
		}
	}
	return ds, nil
}

// Report summarizes a dataset for mariusprep inspect (manifest metadata
// plus bucket distribution; no payload scan).
type Report struct {
	Man *storage.Manifest

	NonEmptyBuckets int
	MinBucket       int64 // over non-empty buckets; 0 when all empty
	MaxBucket       int64
	MeanBucket      float64 // over all p² buckets
	PayloadBytes    int64   // total declared payload size
}

// Inspect opens dir and summarizes it from the manifest alone.
func Inspect(dir string) (*Report, error) {
	ds, err := storage.OpenDataset(dir)
	if err != nil {
		return nil, err
	}
	man := ds.Man
	r := &Report{Man: man, PayloadBytes: man.Edges.Bytes}
	r.MinBucket = -1
	for _, c := range man.BucketCounts {
		if c == 0 {
			continue
		}
		r.NonEmptyBuckets++
		if r.MinBucket < 0 || c < r.MinBucket {
			r.MinBucket = c
		}
		if c > r.MaxBucket {
			r.MaxBucket = c
		}
	}
	if r.MinBucket < 0 {
		r.MinBucket = 0
	}
	if n := len(man.BucketCounts); n > 0 {
		r.MeanBucket = float64(man.NumEdges) / float64(n)
	}
	for _, f := range []*storage.DatasetFile{
		man.Features, man.Labels, man.TrainNodes, man.ValidNodes,
		man.TestNodes, man.ValidEdges, man.TestEdges, man.Dict,
	} {
		if f != nil {
			r.PayloadBytes += f.Bytes
		}
	}
	return r, nil
}
