package dataset_test

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/storage"
	"repro/marius"
)

// smallSBM is the node-classification fixture: small enough for fast
// round trips, structured enough that training moves the loss.
func smallSBM() gen.SBMConfig {
	return gen.SBMConfig{
		NumNodes: 600, NumClasses: 6, AvgDegree: 6, FeatureDim: 12,
		Homophily: 0.8, FeatNoise: 1.0,
		TrainFrac: 0.2, ValidFrac: 0.1, TestFrac: 0.1, Seed: 5,
	}
}

// smallKG is the link-prediction fixture.
func smallKG() gen.KGConfig {
	return gen.KGConfig{
		NumEntities: 700, NumRelations: 9, NumEdges: 6000, ZipfS: 1.2,
		ValidFrac: 0.03, TestFrac: 0.05, Seed: 3,
	}
}

// trainLosses runs epochs training epochs and returns the exact
// per-epoch mean losses.
func trainLosses(t *testing.T, sess *marius.Session, epochs int) []float64 {
	t.Helper()
	losses := make([]float64, 0, epochs)
	for i := 0; i < epochs; i++ {
		st, err := sess.TrainEpoch(context.Background())
		if err != nil {
			t.Fatalf("epoch %d: %v", i, err)
		}
		losses = append(losses, st.Loss)
	}
	return losses
}

// checkpointBytes saves sess and returns the checkpoint file contents.
// checkpointBytes serializes a session's checkpoint with the dataset
// provenance UUID cleared: a dataset session records the manifest UUID
// while the equivalent in-memory-graph session has none, and the
// byte-identity contract covers the training state, not provenance.
func checkpointBytes(t *testing.T, sess *marius.Session) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ckpt")
	if err := sess.Save(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	cp, err := ckpt.Read(path)
	if err != nil {
		t.Fatal(err)
	}
	cp.DatasetUUID = ""
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(cp); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRoundTripNC is the ingestion fidelity contract for node
// classification: export a generated graph to raw TSV files, ingest it
// with a memory cap small enough to force a multi-run external sort, and
// train from the prepared directory — the loss trajectory and the
// checkpoint must be byte-identical to training the in-memory graph at
// the same seed.
func TestRoundTripNC(t *testing.T) {
	const seed, parts, epochs = int64(7), 4, 2
	exp, err := dataset.Export(gen.SBM(smallSBM()), t.TempDir(), "tsv")
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	out := t.TempDir()
	icfg := exp.Config(out, "nc", seed, parts)
	// ~3600 edges at 24 B of sort working set each: a 24 KB cap forces
	// four runs.
	icfg.MemLimit = 24 * 1000
	st, err := dataset.Ingest(icfg)
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if st.SpillRuns < 2 {
		t.Fatalf("memory cap %d produced %d spill runs, want >= 2 (external sort not exercised)",
			icfg.MemLimit, st.SpillRuns)
	}
	if st.MaxBufferedBytes > icfg.MemLimit {
		t.Fatalf("peak sort working set %d exceeds the %d-byte cap", st.MaxBufferedBytes, icfg.MemLimit)
	}
	if _, err := dataset.Validate(out); err != nil {
		t.Fatalf("validate: %v", err)
	}

	opts := []marius.Option{
		marius.WithSeed(seed), marius.WithPartitions(parts),
		marius.WithDim(8), marius.WithFanouts(4, 4),
		marius.WithBatchSize(128), marius.WithWorkers(2),
	}
	ref, err := marius.New(marius.NodeClassification(), gen.SBM(smallSBM()), opts...)
	if err != nil {
		t.Fatalf("in-memory session: %v", err)
	}
	defer ref.Close()
	got, err := marius.FromDataset(out, opts...)
	if err != nil {
		t.Fatalf("dataset session: %v", err)
	}
	defer got.Close()

	refLoss := trainLosses(t, ref, epochs)
	gotLoss := trainLosses(t, got, epochs)
	for i := range refLoss {
		if refLoss[i] != gotLoss[i] {
			t.Fatalf("epoch %d loss diverged: in-memory %v, dataset %v", i, refLoss[i], gotLoss[i])
		}
	}
	if !bytes.Equal(checkpointBytes(t, ref), checkpointBytes(t, got)) {
		t.Fatal("dataset-session checkpoint differs from in-memory checkpoint")
	}
	if _, err := got.Evaluate(marius.TestSplit); err != nil {
		t.Fatalf("dataset evaluate: %v", err)
	}
}

// TestRoundTripLPDisk is the fidelity contract for link prediction under
// the paper's headline configuration: the in-memory-graph session trains
// serially on disk with COMET; the dataset session trains *pipelined*
// from the prepared directory. Losses and checkpoints must match
// byte-for-byte, and the dataset's bucket file must be byte-identical to
// the one the in-memory session's own disk store sorts at startup.
func TestRoundTripLPDisk(t *testing.T) {
	const seed, parts, epochs = int64(11), 8, 2
	exp, err := dataset.Export(gen.KG(smallKG()), t.TempDir(), "csv")
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	out := t.TempDir()
	icfg := exp.Config(out, "lp", seed, parts)
	icfg.MemLimit = 24 * 1500 // ~5.5k train edges: forces multiple runs
	st, err := dataset.Ingest(icfg)
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if st.SpillRuns < 2 {
		t.Fatalf("want >= 2 spill runs, got %d", st.SpillRuns)
	}
	if _, err := dataset.Validate(out); err != nil {
		t.Fatalf("validate: %v", err)
	}

	common := []marius.Option{
		marius.WithSeed(seed), marius.WithModel(marius.DistMultOnly),
		marius.WithDim(8), marius.WithBatchSize(512), marius.WithNegatives(64),
		marius.WithWorkers(2),
	}
	refDir := t.TempDir()
	ref, err := marius.New(marius.LinkPrediction(), gen.KG(smallKG()), append(common,
		marius.WithDisk(refDir, marius.Partitions(parts), marius.Capacity(4), marius.LogicalPartitions(4)))...)
	if err != nil {
		t.Fatalf("in-memory-graph session: %v", err)
	}
	defer ref.Close()
	got, err := marius.FromDataset(out, append(common,
		marius.WithDisk(t.TempDir(), marius.Capacity(4), marius.LogicalPartitions(4)),
		marius.WithPipeline(2))...)
	if err != nil {
		t.Fatalf("dataset session: %v", err)
	}
	defer got.Close()

	// The ingested bucket file must match the bucket sort the reference
	// session performed in memory at startup.
	refEdges, err := os.ReadFile(filepath.Join(refDir, "edges.bin"))
	if err != nil {
		t.Fatal(err)
	}
	dsEdges, err := os.ReadFile(filepath.Join(out, "edges.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refEdges, dsEdges) {
		t.Fatal("ingested edges.bin differs from the in-memory session's bucket-sorted file")
	}

	refLoss := trainLosses(t, ref, epochs)
	gotLoss := trainLosses(t, got, epochs)
	for i := range refLoss {
		if refLoss[i] != gotLoss[i] {
			t.Fatalf("epoch %d loss diverged: serial in-memory-graph %v, pipelined dataset %v",
				i, refLoss[i], gotLoss[i])
		}
	}
	if !bytes.Equal(checkpointBytes(t, ref), checkpointBytes(t, got)) {
		t.Fatal("pipelined dataset checkpoint differs from serial in-memory-graph checkpoint")
	}
}

// TestFormatsAgree ingests the same graph from TSV and binary exports
// and requires identical bucket files and checksums.
func TestFormatsAgree(t *testing.T) {
	g1, g2 := gen.KG(smallKG()), gen.KG(smallKG())
	expT, err := dataset.Export(g1, t.TempDir(), "tsv")
	if err != nil {
		t.Fatal(err)
	}
	expB, err := dataset.Export(g2, t.TempDir(), "bin")
	if err != nil {
		t.Fatal(err)
	}
	outT, outB := t.TempDir(), t.TempDir()
	if _, err := dataset.Ingest(expT.Config(outT, "lp", 1, 4)); err != nil {
		t.Fatalf("tsv ingest: %v", err)
	}
	if _, err := dataset.Ingest(expB.Config(outB, "lp", 1, 4)); err != nil {
		t.Fatalf("bin ingest: %v", err)
	}
	mt, err := storage.ReadManifest(outT)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := storage.ReadManifest(outB)
	if err != nil {
		t.Fatal(err)
	}
	for b := range mt.BucketCRCs {
		if mt.BucketCRCs[b] != mb.BucketCRCs[b] || mt.BucketCounts[b] != mb.BucketCounts[b] {
			t.Fatalf("bucket %d differs between tsv and bin ingests", b)
		}
	}
	bt, _ := os.ReadFile(filepath.Join(outT, "edges.bin"))
	bb, _ := os.ReadFile(filepath.Join(outB, "edges.bin"))
	if !bytes.Equal(bt, bb) {
		t.Fatal("edges.bin differs between tsv and bin ingests")
	}
}

// TestValidateDetectsCorruption covers the typed corruption contract:
// truncation is caught at open (exact size check), and a flipped byte is
// caught by validate as a *storage.CorruptError naming the bucket —
// never a raw io.ErrUnexpectedEOF.
func TestValidateDetectsCorruption(t *testing.T) {
	exp, err := dataset.Export(gen.KG(smallKG()), t.TempDir(), "tsv")
	if err != nil {
		t.Fatal(err)
	}
	out := t.TempDir()
	if _, err := dataset.Ingest(exp.Config(out, "lp", 4, 4)); err != nil {
		t.Fatal(err)
	}
	edgesPath := filepath.Join(out, "edges.bin")
	orig, err := os.ReadFile(edgesPath)
	if err != nil {
		t.Fatal(err)
	}

	// Truncation: rejected at OpenDataset with the typed sentinel.
	if err := os.WriteFile(edgesPath, orig[:len(orig)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := storage.OpenDataset(out); !errors.Is(err, storage.ErrCorruptDataset) {
		t.Fatalf("open of truncated dataset: got %v, want ErrCorruptDataset", err)
	}
	if _, err := dataset.Validate(out); !errors.Is(err, dataset.ErrCorrupt) {
		t.Fatalf("validate of truncated dataset: got %v, want ErrCorrupt", err)
	}

	// Bit flip mid-file: size-valid, so only the checksum pass catches
	// it — and it must name the damaged bucket.
	corrupted := append([]byte(nil), orig...)
	corrupted[len(corrupted)/2] ^= 0xFF
	if err := os.WriteFile(edgesPath, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := storage.OpenDataset(out); err != nil {
		t.Fatalf("open only checks sizes, got %v", err)
	}
	_, err = dataset.Validate(out)
	var ce *storage.CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("validate of corrupt bucket: got %v, want *storage.CorruptError", err)
	}
	if ce.Bucket[0] < 0 {
		t.Fatalf("corrupt error does not name a bucket: %v", ce)
	}
	if !errors.Is(err, storage.ErrCorruptDataset) {
		t.Fatalf("corrupt error does not unwrap to the sentinel: %v", err)
	}

	// Restore the payload, damage an aux shard instead.
	if err := os.WriteFile(edgesPath, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	dictPath := filepath.Join(out, "dict.tsv")
	dict, err := os.ReadFile(dictPath)
	if err != nil {
		t.Fatal(err)
	}
	dict[0] ^= 0xFF
	if err := os.WriteFile(dictPath, dict, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := dataset.Validate(out); !errors.As(err, &ce) || ce.Path != "dict.tsv" {
		t.Fatalf("validate of corrupt dict: got %v, want CorruptError on dict.tsv", err)
	}

	// A manifest from the future is refused with the version sentinel.
	if err := os.WriteFile(dictPath, dict[:0], 0o644); err != nil { // leave dict corrupt; version wins first
		t.Fatal(err)
	}
	man, err := storage.ReadManifest(out)
	if err != nil {
		t.Fatal(err)
	}
	man.Version = storage.DatasetVersionRelations + 1
	if err := storage.WriteManifest(out, man); err != nil {
		t.Fatal(err)
	}
	if _, err := storage.OpenDataset(out); !errors.Is(err, storage.ErrDatasetVersion) {
		t.Fatalf("open of future version: got %v, want ErrDatasetVersion", err)
	}
}

// TestIngestInputErrors covers the typed bad-input contract.
func TestIngestInputErrors(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	edges := write("edges.tsv", "a b\nb c\n")
	nodes := write("nodes.tsv", "a\nb\n") // missing c

	_, err := dataset.Ingest(dataset.Config{
		Out: t.TempDir(), Edges: edges, Nodes: nodes, Task: "lp", Partitions: 2,
	})
	if !errors.Is(err, dataset.ErrUnknownNode) {
		t.Fatalf("edge with unknown node: got %v, want ErrUnknownNode", err)
	}

	bad := write("bad.tsv", "a b c d e\n")
	_, err = dataset.Ingest(dataset.Config{Out: t.TempDir(), Edges: bad, Task: "lp", Partitions: 2})
	if !errors.Is(err, dataset.ErrBadInput) {
		t.Fatalf("5-field edge line: got %v, want ErrBadInput", err)
	}

	// First-seen dictionary (no nodes file) admits everything.
	out := t.TempDir()
	st, err := dataset.Ingest(dataset.Config{Out: out, Edges: edges, Task: "lp", Partitions: 2})
	if err != nil {
		t.Fatalf("first-seen ingest: %v", err)
	}
	if st.NumNodes != 3 || st.NumEdges != 2 {
		t.Fatalf("first-seen ingest saw %d nodes / %d edges, want 3 / 2", st.NumNodes, st.NumEdges)
	}
	if _, err := dataset.Validate(out); err != nil {
		t.Fatalf("validate: %v", err)
	}

	// NC without a train split is rejected.
	_, err = dataset.Ingest(dataset.Config{Out: t.TempDir(), Edges: edges, Task: "nc", Partitions: 2})
	if !errors.Is(err, dataset.ErrBadInput) {
		t.Fatalf("nc without train nodes: got %v, want ErrBadInput", err)
	}

	// NC with an unlabeled train node is rejected: a -1 label would
	// reach the classification loss as a bogus class index.
	labeled := write("labeled.tsv", "a\t1\nb\nc\t0\n")
	trainB := write("train_b.tsv", "b\n")
	_, err = dataset.Ingest(dataset.Config{
		Out: t.TempDir(), Edges: edges, Nodes: labeled, TrainNodes: trainB,
		Task: "nc", Partitions: 2,
	})
	if !errors.Is(err, dataset.ErrBadInput) {
		t.Fatalf("nc with unlabeled train node: got %v, want ErrBadInput", err)
	}

	// An explicit feature dim demands an exact file size.
	feats := write("feats.bin", "12345678") // 2 float32s for 3 nodes
	trainA := write("train_a.tsv", "a\n")
	_, err = dataset.Ingest(dataset.Config{
		Out: t.TempDir(), Edges: edges, Nodes: labeled, TrainNodes: trainA,
		Features: feats, FeatureDim: 3, Task: "nc", Partitions: 2,
	})
	if !errors.Is(err, dataset.ErrBadInput) {
		t.Fatalf("wrong-sized feature file with explicit dim: got %v, want ErrBadInput", err)
	}
}

// TestRelationVersioning pins the layout-version contract for typed
// edges: a multi-relation ingest declares DatasetVersionRelations, a
// single-relation ingest keeps the original version (so its UUID, which
// hashes the version, is stable across builds), and a multi-relation
// manifest claiming a pre-relation version is rejected with the typed
// version sentinel — relation-blind readers must fail, not silently
// collapse every edge onto relation 0.
func TestRelationVersioning(t *testing.T) {
	exp, err := dataset.Export(gen.KG(smallKG()), t.TempDir(), "tsv")
	if err != nil {
		t.Fatal(err)
	}
	multi := t.TempDir()
	if _, err := dataset.Ingest(exp.Config(multi, "lp", 1, 2)); err != nil {
		t.Fatal(err)
	}
	man, err := storage.ReadManifest(multi)
	if err != nil {
		t.Fatal(err)
	}
	if man.NumRels != 9 {
		t.Fatalf("ingest inferred %d relation types, want 9", man.NumRels)
	}
	if man.Version != storage.DatasetVersionRelations {
		t.Fatalf("multi-relation manifest version = %d, want %d", man.Version, storage.DatasetVersionRelations)
	}

	kg := smallKG()
	kg.NumRelations = 1
	exp1, err := dataset.Export(gen.KG(kg), t.TempDir(), "tsv")
	if err != nil {
		t.Fatal(err)
	}
	single := t.TempDir()
	if _, err := dataset.Ingest(exp1.Config(single, "lp", 1, 2)); err != nil {
		t.Fatal(err)
	}
	man1, err := storage.ReadManifest(single)
	if err != nil {
		t.Fatal(err)
	}
	if man1.NumRels != 1 || man1.Version != storage.DatasetVersionPlain {
		t.Fatalf("single-relation manifest: version %d with %d relations, want version %d with 1",
			man1.Version, man1.NumRels, storage.DatasetVersionPlain)
	}

	// A relation out of the declared range is a typed ingest error.
	capped := exp.Config(t.TempDir(), "lp", 1, 2)
	capped.NumRels = 2
	if _, err := dataset.Ingest(capped); !errors.Is(err, dataset.ErrBadInput) {
		t.Fatalf("relation beyond -num-rels: got %v, want ErrBadInput", err)
	}

	// Downgrading the multi-relation manifest to a pre-relation version
	// must fail typed at read time.
	man.Version = storage.DatasetVersionPlain
	if err := storage.WriteManifest(multi, man); err != nil {
		t.Fatal(err)
	}
	if _, err := storage.ReadManifest(multi); !errors.Is(err, storage.ErrDatasetVersion) {
		t.Fatalf("multi-relation manifest at version 1: got %v, want ErrDatasetVersion", err)
	}
}
