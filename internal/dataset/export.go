package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/graph"
)

// ExportFiles names the raw files Export wrote, ready to feed back into
// Ingest (or mariusprep prep) as the matching Config fields.
type ExportFiles struct {
	Edges, ValidEdges, TestEdges      string
	Nodes, Features                   string
	TrainNodes, ValidNodes, TestNodes string
	NumRels, NumClasses, FeatureDim   int
}

// Config returns an Ingest configuration over the exported files,
// reproducing g's task data exactly when ingested with the same seed the
// training session uses.
func (f *ExportFiles) Config(out, task string, seed int64, partitions int) Config {
	return Config{
		Out:        out,
		Edges:      f.Edges,
		ValidEdges: f.ValidEdges,
		TestEdges:  f.TestEdges,
		Nodes:      f.Nodes,
		Features:   f.Features,
		TrainNodes: f.TrainNodes,
		ValidNodes: f.ValidNodes,
		TestNodes:  f.TestNodes,
		Task:       task,
		Seed:       seed,
		Partitions: partitions,
		NumRels:    f.NumRels,
		NumClasses: f.NumClasses,
		FeatureDim: f.FeatureDim,
	}
}

// Export writes g as raw ingestion inputs under dir: an edge list in the
// given format ("tsv", "csv" or "bin"), a nodes file enumerating IDs
// 0..n-1 in order (with labels when present), a float32 feature table,
// split files, and held-out edge lists. Export must run on a freshly
// generated graph — before any session relabels it — so that the node
// dictionary maps IDs identically and a subsequent Ingest at the same
// seed reproduces the session's exact layout.
func Export(g *graph.Graph, dir, format string) (*ExportFiles, error) {
	var ext string
	switch format {
	case "tsv":
		ext = ".tsv"
	case "csv":
		ext = ".csv"
	case "bin":
		ext = ".bin"
	default:
		return nil, fmt.Errorf("dataset: %w: export format %q (want tsv, csv or bin)", ErrBadInput, format)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	out := &ExportFiles{NumRels: g.NumRels, NumClasses: g.NumClasses}

	writeEdges := func(edges []graph.Edge, name string) (string, error) {
		if len(edges) == 0 {
			return "", nil
		}
		path := filepath.Join(dir, name+ext)
		f, err := os.Create(path)
		if err != nil {
			return "", err
		}
		w := bufio.NewWriterSize(f, 1<<20)
		if format == "bin" {
			var rec [edgeBytes]byte
			for _, e := range edges {
				encodeEdge(e, rec[:])
				if _, err := w.Write(rec[:]); err != nil {
					f.Close()
					return "", err
				}
			}
		} else {
			sep := byte('\t')
			if format == "csv" {
				sep = ','
			}
			var line []byte
			for _, e := range edges {
				line = strconv.AppendInt(line[:0], int64(e.Src), 10)
				line = append(line, sep)
				line = strconv.AppendInt(line, int64(e.Rel), 10)
				line = append(line, sep)
				line = strconv.AppendInt(line, int64(e.Dst), 10)
				line = append(line, '\n')
				if _, err := w.Write(line); err != nil {
					f.Close()
					return "", err
				}
			}
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return "", err
		}
		return path, f.Close()
	}
	var err error
	if out.Edges, err = writeEdges(g.Edges, "edges"); err != nil {
		return nil, err
	}
	if out.Edges == "" {
		return nil, fmt.Errorf("dataset: %w: graph has no training edges", ErrBadInput)
	}
	if out.ValidEdges, err = writeEdges(g.ValidEdges, "valid_edges"); err != nil {
		return nil, err
	}
	if out.TestEdges, err = writeEdges(g.TestEdges, "test_edges"); err != nil {
		return nil, err
	}

	// Nodes file: IDs 0..n-1 in order, so the ingest dictionary is the
	// identity mapping (labels ride along for node classification).
	out.Nodes = filepath.Join(dir, "nodes.tsv")
	nf, err := os.Create(out.Nodes)
	if err != nil {
		return nil, err
	}
	w := bufio.NewWriterSize(nf, 1<<20)
	var line []byte
	for v := 0; v < g.NumNodes; v++ {
		line = strconv.AppendInt(line[:0], int64(v), 10)
		// Unlabeled nodes (-1) export as a bare ID; readNodesFile maps
		// the missing column back to -1.
		if g.Labels != nil && g.Labels[v] >= 0 {
			line = append(line, '\t')
			line = strconv.AppendInt(line, int64(g.Labels[v]), 10)
		}
		line = append(line, '\n')
		if _, err := w.Write(line); err != nil {
			nf.Close()
			return nil, err
		}
	}
	if err := w.Flush(); err != nil {
		nf.Close()
		return nil, err
	}
	if err := nf.Close(); err != nil {
		return nil, err
	}

	if g.Features != nil {
		out.FeatureDim = g.Features.Cols
		out.Features = filepath.Join(dir, "features.bin")
		ff, err := os.Create(out.Features)
		if err != nil {
			return nil, err
		}
		fw := bufio.NewWriterSize(ff, 1<<20)
		var rec [4]byte
		for _, v := range g.Features.Data {
			binary.LittleEndian.PutUint32(rec[:], math.Float32bits(v))
			if _, err := fw.Write(rec[:]); err != nil {
				ff.Close()
				return nil, err
			}
		}
		if err := fw.Flush(); err != nil {
			ff.Close()
			return nil, err
		}
		if err := ff.Close(); err != nil {
			return nil, err
		}
	}

	writeSplit := func(ids []int32, name string) (string, error) {
		if len(ids) == 0 {
			return "", nil
		}
		path := filepath.Join(dir, name+".tsv")
		f, err := os.Create(path)
		if err != nil {
			return "", err
		}
		w := bufio.NewWriterSize(f, 1<<20)
		var line []byte
		for _, id := range ids {
			line = strconv.AppendInt(line[:0], int64(id), 10)
			line = append(line, '\n')
			if _, err := w.Write(line); err != nil {
				f.Close()
				return "", err
			}
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return "", err
		}
		return path, f.Close()
	}
	if out.TrainNodes, err = writeSplit(g.TrainNodes, "train_nodes"); err != nil {
		return nil, err
	}
	if out.ValidNodes, err = writeSplit(g.ValidNodes, "valid_nodes"); err != nil {
		return nil, err
	}
	if out.TestNodes, err = writeSplit(g.TestNodes, "test_nodes"); err != nil {
		return nil, err
	}
	return out, nil
}
