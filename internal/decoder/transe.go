package decoder

import (
	"math/rand"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// TransE scores an edge (s, r, d) as the negative squared distance
// −‖e_s + w_r − e_d‖² (Bordes et al.). Expanding the square,
//
//	score = 2·⟨q, e_d⟩ − ‖q‖² − ‖e_d‖²   with q = e_s + w_r,
//
// so candidate scoring is still one fused dot product per entity plus a
// per-query bias (−‖q‖²) and a per-candidate bias (−‖e‖², precomputable
// once per entity table via TableNorms). Norms() reports true; score
// paths apply the completion through FinishScores/ScoreOne.
type TransE struct {
	Rel *nn.Param // [numRels x dim] learned relation translations
	dim int
}

// NewTransE registers relation translations in ps.
func NewTransE(ps *nn.ParamSet, numRels, dim int, rng *rand.Rand) *TransE {
	p := ps.New("transe.rel", numRels, dim)
	p.Value.RandUniform(rng, 0.1)
	return &TransE{Rel: p, dim: dim}
}

// Kind returns "transe".
func (d *TransE) Kind() string { return KindTransE }

// Dim returns the embedding dimensionality.
func (d *TransE) Dim() int { return d.dim }

// RelParam returns the learned relation table.
func (d *TransE) RelParam() *nn.Param { return d.Rel }

// Norms reports true: scores need the squared-norm completion.
func (d *TransE) Norms() bool { return true }

// TailQueryInto folds (src, rel) into q = src + rel.
func (d *TransE) TailQueryInto(q, src, rel []float32) {
	for j := range q {
		q[j] = src[j] + rel[j]
	}
}

// HeadQueryInto folds (rel, dst) into q = dst − rel: −‖s+r−d‖² =
// −‖s − (d−r)‖², so heads rank by 2·⟨d−r, e_s⟩ − ‖d−r‖² − ‖e_s‖².
func (d *TransE) HeadQueryInto(q, dst, rel []float32) {
	for j := range q {
		q[j] = dst[j] - rel[j]
	}
}

// Loss implements Decoder. The fused kernel supplies the ⟨q, e⟩ dots for
// all negatives; AddColVec/AddRowVec complete them with the per-query and
// per-candidate squared-norm biases on the tape (the only place the
// negative rows materialize is the norm computation itself).
func (d *TransE) Loss(tp *tensor.Tape, params map[string]*tensor.Node, enc *tensor.Node, srcIdx, dstIdx, negIdx, rels []int32) (loss, posScores, negDst, negSrc *tensor.Node) {
	relRows := tp.Gather(params[d.Rel.Name], rels) // [B x dim]
	srcEnc := tp.Gather(enc, srcIdx)
	dstEnc := tp.Gather(enc, dstIdx)

	q := tp.Add(srcEnc, relRows)    // [B x dim] tail query s + r
	hq := tp.Sub(dstEnc, relRows)   // [B x dim] head query d − r
	qn := tp.RowSum(tp.Mul(q, q))   // [B x 1] ‖s+r‖²
	hn := tp.RowSum(tp.Mul(hq, hq)) // [B x 1] ‖d−r‖²
	negRows := tp.Gather(enc, negIdx)
	en := tp.RowSum(tp.Mul(negRows, negRows)) // [N x 1] per-negative ‖e‖²

	dn := tp.RowSum(tp.Mul(dstEnc, dstEnc)) // [B x 1] ‖d‖²
	posScores = tp.Sub(tp.Sub(tp.Scale(tp.RowSum(tp.Mul(q, dstEnc)), 2), qn), dn)

	negDst = tp.AddRowVec(
		tp.AddColVec(tp.Scale(tp.GatherMatMulTB(q, enc, negIdx), 2), tp.Scale(qn, -1)),
		tp.Scale(en, -1),
	) // [B x N] corrupt destination
	negSrc = tp.AddRowVec(
		tp.AddColVec(tp.Scale(tp.GatherMatMulTB(hq, enc, negIdx), 2), tp.Scale(hn, -1)),
		tp.Scale(en, -1),
	) // [B x N] corrupt source

	loss = ceLoss(tp, posScores, negDst, negSrc, len(srcIdx))
	return loss, posScores, negDst, negSrc
}
