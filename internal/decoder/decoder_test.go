package decoder

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestDistMultScoreMatchesDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ps := nn.NewParamSet()
	d := NewDistMult(ps, 3, 4, rng)

	// Seven encoded rows: 2 sources, 2 destinations, 3 shared negatives.
	enc := tensor.New(7, 4)
	enc.RandNormal(rng, 1)
	src := tensor.FromSlice(2, 4, enc.Data[0:8])
	dst := tensor.FromSlice(2, 4, enc.Data[8:16])
	neg := tensor.FromSlice(3, 4, enc.Data[16:28])
	srcIdx, dstIdx, negIdx := []int32{0, 1}, []int32{2, 3}, []int32{4, 5, 6}
	rels := []int32{0, 2}

	tp := tensor.NewTape()
	params := ps.Bind(tp)
	_, pos, negD, negS := d.Loss(tp, params, tp.Constant(enc), srcIdx, dstIdx, negIdx, rels)

	relT := d.Rel.Value
	for i := 0; i < 2; i++ {
		var want float64
		for j := 0; j < 4; j++ {
			want += float64(src.At(i, j)) * float64(relT.At(int(rels[i]), j)) * float64(dst.At(i, j))
		}
		if math.Abs(float64(pos.Value.At(i, 0))-want) > 1e-4 {
			t.Fatalf("pos score %d: got %v want %v", i, pos.Value.At(i, 0), want)
		}
		for n := 0; n < 3; n++ {
			var wd, ws float64
			for j := 0; j < 4; j++ {
				wd += float64(src.At(i, j)) * float64(relT.At(int(rels[i]), j)) * float64(neg.At(n, j))
				ws += float64(dst.At(i, j)) * float64(relT.At(int(rels[i]), j)) * float64(neg.At(n, j))
			}
			if math.Abs(float64(negD.Value.At(i, n))-wd) > 1e-4 {
				t.Fatalf("negDst score (%d,%d) wrong", i, n)
			}
			if math.Abs(float64(negS.Value.At(i, n))-ws) > 1e-4 {
				t.Fatalf("negSrc score (%d,%d) wrong", i, n)
			}
		}
	}
}

func TestDistMultLossGradientsFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ps := nn.NewParamSet()
	d := NewDistMult(ps, 2, 3, rng)
	// 13 encoded rows: 4 sources, 4 destinations, 5 negatives.
	enc := tensor.New(13, 3)
	enc.RandNormal(rng, 1)

	tp := tensor.NewTape()
	params := ps.Bind(tp)
	encN := tp.Leaf(enc, true)
	loss, _, _, _ := d.Loss(tp, params, encN,
		[]int32{0, 1, 2, 3}, []int32{4, 5, 6, 7}, []int32{8, 9, 10, 11, 12}, []int32{0, 1, 0, 1})
	tp.Backward(loss)
	if encN.Grad() == nil {
		t.Fatal("no gradient to encoded embeddings")
	}
	if params[d.Rel.Name].Grad() == nil {
		t.Fatal("no gradient to relation embeddings")
	}
}

func TestBatchMRRAndHits(t *testing.T) {
	pos := tensor.FromSlice(3, 1, []float32{5, 1, 2})
	neg := tensor.FromSlice(3, 3, []float32{
		1, 2, 3, // rank 1 -> RR 1
		2, 3, 4, // rank 4 -> RR 0.25
		2, 1, 0, // one tie (2) and one below -> rank 1 + 0.5 = 1.5
	})
	want := (1.0 + 0.25 + 1/1.5) / 3
	if got := BatchMRR(pos, neg); math.Abs(got-want) > 1e-9 {
		t.Fatalf("MRR = %v, want %v", got, want)
	}
	if got := HitsAtK(pos, neg, 1); math.Abs(got-2.0/3) > 1e-9 {
		t.Fatalf("Hits@1 = %v", got)
	}
	if got := HitsAtK(pos, neg, 10); got != 1 {
		t.Fatalf("Hits@10 = %v", got)
	}
}

func TestFullRankAndScoreAll(t *testing.T) {
	emb := tensor.FromSlice(4, 2, []float32{
		1, 0,
		0, 1,
		1, 1,
		-1, 0,
	})
	src := []float32{1, 0}
	rel := []float32{1, 1}
	scores := ScoreAll(&DistMult{dim: 2}, src, rel, emb)
	// scores = src*rel . emb = [1,0] . rows -> [1, 0, 1, -1]
	wantScores := []float32{1, 0, 1, -1}
	for i := range wantScores {
		if scores[i] != wantScores[i] {
			t.Fatalf("score %d = %v", i, scores[i])
		}
	}
	// Target 2 has score 1 with one tie (index 0): rank 1 + 0.5.
	if r := FullRank(scores, 2); r != 1.5 {
		t.Fatalf("rank = %v", r)
	}
	if r := FullRank(scores, 3); r != 4 {
		t.Fatalf("rank = %v", r)
	}
	top := TopK(scores, 2)
	if len(top) != 2 || scores[top[0]] < scores[top[1]] {
		t.Fatalf("TopK broken: %v", top)
	}
}
