// Package decoder implements link-prediction score functions and losses.
//
// MariusGNN evaluates link prediction with the DistMult score function
// (Yang et al.) over encoder outputs, trained with softmax cross-entropy
// against a shared set of negative samples per batch, and reports MRR.
package decoder

import (
	"math/rand"
	"sort"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// DistMult scores an edge (s, r, d) as ⟨e_s, w_r, e_d⟩ = Σ_j e_s[j]·w_r[j]·e_d[j].
type DistMult struct {
	Rel *nn.Param // [numRels x dim] learned relation embeddings
	dim int
}

// NewDistMult registers relation embeddings in ps.
func NewDistMult(ps *nn.ParamSet, numRels, dim int, rng *rand.Rand) *DistMult {
	p := ps.New("distmult.rel", numRels, dim)
	p.Value.RandUniform(rng, 0.1)
	return &DistMult{Rel: p, dim: dim}
}

// Dim returns the embedding dimensionality.
func (d *DistMult) Dim() int { return d.dim }

// Loss computes the batched link-prediction loss with shared negatives.
// enc holds the encoded node representations; srcIdx/dstIdx select the
// endpoint rows of the B positive edges, rels are the edge relation IDs,
// and negIdx selects the N negative nodes shared across the batch. Both
// endpoints are corrupted (source- and destination-side negatives), as in
// Marius. Negative scoring uses the fused gather+matmul kernel: the
// looked-up negative embeddings are streamed straight out of enc, never
// materialized as a [N x dim] matrix. The returned node is the scalar
// loss; posScores/negDst/negSrc are returned for metric computation.
func (d *DistMult) Loss(tp *tensor.Tape, params map[string]*tensor.Node, enc *tensor.Node, srcIdx, dstIdx, negIdx, rels []int32) (loss, posScores, negDst, negSrc *tensor.Node) {
	relRows := tp.Gather(params[d.Rel.Name], rels) // [B x dim]

	srcEnc := tp.Gather(enc, srcIdx)
	dstEnc := tp.Gather(enc, dstIdx)
	srcRel := tp.Mul(srcEnc, relRows) // [B x dim]
	dstRel := tp.Mul(dstEnc, relRows)

	posScores = tp.RowSum(tp.Mul(srcRel, dstEnc))   // [B x 1]
	negDst = tp.GatherMatMulTB(srcRel, enc, negIdx) // [B x N] corrupt destination
	negSrc = tp.GatherMatMulTB(dstRel, enc, negIdx) // [B x N] corrupt source

	labels := make([]int32, len(srcIdx))
	lossDst := tp.SoftmaxCrossEntropy(tp.ConcatCols(posScores, negDst), labels)
	lossSrc := tp.SoftmaxCrossEntropy(tp.ConcatCols(posScores, negSrc), labels)
	loss = tp.Scale(tp.Add(lossDst, lossSrc), 0.5)
	return loss, posScores, negDst, negSrc
}

// BatchMRR computes the mean reciprocal rank of each positive score
// against its row of negative scores (optimistic-minus-ties ranking: rank
// = 1 + count of strictly greater negatives + half of ties).
func BatchMRR(pos, neg *tensor.Tensor) float64 {
	if pos.Rows == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < pos.Rows; i++ {
		p := pos.At(i, 0)
		rank := 1.0
		for _, s := range neg.Row(i) {
			if s > p {
				rank++
			} else if s == p {
				rank += 0.5
			}
		}
		sum += 1 / rank
	}
	return sum / float64(pos.Rows)
}

// HitsAtK computes the fraction of positives ranked within the top k.
func HitsAtK(pos, neg *tensor.Tensor, k int) float64 {
	if pos.Rows == 0 {
		return 0
	}
	hits := 0
	for i := 0; i < pos.Rows; i++ {
		p := pos.At(i, 0)
		rank := 1
		for _, s := range neg.Row(i) {
			if s > p {
				rank++
			}
		}
		if rank <= k {
			hits++
		}
	}
	return float64(hits) / float64(pos.Rows)
}

// ScoreAll scores (src, rel) against every row of emb (all entities) and
// returns the scores; used for full-ranking MRR on small graphs
// (paper §7.5 uses all negatives on FB15k-237).
func (d *DistMult) ScoreAll(srcRow, relRow []float32, emb *tensor.Tensor) []float32 {
	out := make([]float32, emb.Rows)
	dim := len(srcRow)
	sr := make([]float32, dim)
	for j := range sr {
		sr[j] = srcRow[j] * relRow[j]
	}
	for v := 0; v < emb.Rows; v++ {
		row := emb.Row(v)
		var s float32
		for j := range sr {
			s += sr[j] * row[j]
		}
		out[v] = s
	}
	return out
}

// FullRank returns the rank of target among scores (1-based, average-tie).
func FullRank(scores []float32, target int32) float64 {
	p := scores[target]
	rank, ties := 1, 0
	for i, s := range scores {
		if int32(i) == target {
			continue
		}
		if s > p {
			rank++
		} else if s == p {
			ties++
		}
	}
	return float64(rank) + float64(ties)/2
}

// TopK returns the indices of the k highest scores (descending).
func TopK(scores []float32, k int) []int32 {
	idx := make([]int32, len(scores))
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}
