// Package decoder implements link-prediction score functions and losses.
//
// MariusGNN scores knowledge-graph edges with a translating or factoring
// decoder over encoder outputs — DistMult (Yang et al.), ComplEx
// (Trouillon et al.) or TransE (Bordes et al.) — trained with softmax
// cross-entropy against a shared set of negative samples per batch, and
// reports filtered MRR/Hits@k.
//
// Every decoder scores through the same fused kernel: an edge query is
// folded into a single vector q (TailQueryInto/HeadQueryInto) such that a
// candidate entity e scores as ⟨q, e⟩, optionally completed with the
// squared-norm terms 2·⟨q,e⟩ − ‖q‖² − ‖e‖² when Norms reports true
// (TransE's negative squared distance, expanded). Candidate scoring is
// therefore one GatherMatMulTB launch per chunk regardless of decoder —
// the score matrix is never materialized beyond the chunk — and, because
// each fused output element is a single zero-seeded ascending dot
// product, scalar reference scorers (RefScore) reproduce the kernel
// bit for bit at every worker count.
package decoder

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Decoder kind names. These are the strings recorded in checkpoint
// manifests (ckpt.ModelMeta.Decoder) and exposed at /statz.
const (
	KindDistMult = "distmult"
	KindComplEx  = "complex"
	KindTransE   = "transe"
)

// Decoder is one link-prediction score function with its learned relation
// table. All decoders train through Loss (tape-recorded, fused negative
// scoring) and serve/evaluate through folded queries scored by ⟨q, e⟩
// (+ the norm completion when Norms is true).
type Decoder interface {
	// Kind returns the decoder kind name ("distmult", "complex", "transe").
	Kind() string
	// Dim returns the embedding dimensionality.
	Dim() int
	// RelParam returns the learned relation table parameter ([numRels x dim]).
	RelParam() *nn.Param
	// Loss computes the batched link-prediction loss with shared negatives.
	// enc holds the encoded node representations; srcIdx/dstIdx select the
	// endpoint rows of the B positive edges, rels are the edge relation
	// IDs, and negIdx selects the N negative nodes shared across the
	// batch. Both endpoints are corrupted. The returned node is the scalar
	// loss; posScores/negDst/negSrc are returned for metric computation.
	Loss(tp *tensor.Tape, params map[string]*tensor.Node, enc *tensor.Node, srcIdx, dstIdx, negIdx, rels []int32) (loss, posScores, negDst, negSrc *tensor.Node)
	// TailQueryInto folds (src, rel) into q (length Dim) such that every
	// candidate tail t scores as ⟨q, e_t⟩ (+ norm completion).
	// q must not alias src or rel.
	TailQueryInto(q, src, rel []float32)
	// HeadQueryInto folds (rel, dst) into q for ranking candidate heads.
	HeadQueryInto(q, dst, rel []float32)
	// Norms reports whether scores need the squared-norm completion
	// s = 2·dot − ‖q‖² − ‖e‖² on top of the raw dot product.
	Norms() bool
}

// New builds the named decoder, registering its relation table in ps.
// Unknown kinds and invalid (kind, dim) combinations return an error
// (ComplEx splits the embedding into real/imaginary halves and needs an
// even dim).
func New(kind string, ps *nn.ParamSet, numRels, dim int, rng *rand.Rand) (Decoder, error) {
	switch kind {
	case KindDistMult:
		return NewDistMult(ps, numRels, dim, rng), nil
	case KindComplEx:
		return NewComplEx(ps, numRels, dim, rng)
	case KindTransE:
		return NewTransE(ps, numRels, dim, rng), nil
	default:
		return nil, fmt.Errorf("decoder: unknown kind %q", kind)
	}
}

// ceLoss combines positive and corrupted scores into the symmetric
// softmax cross-entropy loss (the positive sits in column 0).
func ceLoss(tp *tensor.Tape, pos, negDst, negSrc *tensor.Node, batch int) *tensor.Node {
	labels := make([]int32, batch)
	lossDst := tp.SoftmaxCrossEntropy(tp.ConcatCols(pos, negDst), labels)
	lossSrc := tp.SoftmaxCrossEntropy(tp.ConcatCols(pos, negSrc), labels)
	return tp.Scale(tp.Add(lossDst, lossSrc), 0.5)
}

// SqNorm returns ‖row‖², accumulated in ascending index order.
func SqNorm(row []float32) float32 {
	var s float32
	for _, v := range row {
		s += v * v
	}
	return s
}

// TableNorms returns the per-row squared norms of t. Precomputed once per
// entity table, the norms make every TransE candidate score one fused dot
// plus a scalar completion.
func TableNorms(t *tensor.Tensor) []float32 {
	out := make([]float32, t.Rows)
	for i := range out {
		out[i] = SqNorm(t.Row(i))
	}
	return out
}

// QTableNorms returns the per-row squared norms of a quantized table,
// computed from the dequantized values so the completion matches the
// dequantizing score kernel bit for bit.
func QTableNorms(q *tensor.QTable) []float32 {
	out := make([]float32, q.Rows)
	buf := make([]float32, q.Cols)
	for i := range out {
		q.DequantRowInto(i, buf)
		out[i] = SqNorm(buf)
	}
	return out
}

// FinishScores applies the in-place norm completion
// s[i][j] = 2·s[i][j] − qn[i] − tn[idx[j]] when d.Norms() is true; a
// no-op otherwise. s holds raw fused dot products of queries against
// table[idx], qn the per-query squared norms, tn the per-table-row
// squared norms.
func FinishScores(d Decoder, s *tensor.Tensor, qn, tn []float32, idx []int32) {
	if !d.Norms() {
		return
	}
	for i := 0; i < s.Rows; i++ {
		row, q := s.Row(i), qn[i]
		for j := range row {
			row[j] = 2*row[j] - q - tn[idx[j]]
		}
	}
}

// ScoreOne scores a folded query against a single candidate row exactly
// as the fused chunk path does: one zero-seeded ascending dot, then the
// norm completion. qn/cn are the squared norms of q and cand (ignored
// unless d.Norms()).
func ScoreOne(d Decoder, q, cand []float32, qn, cn float32) float32 {
	var dot float32
	for j, v := range q {
		dot += v * cand[j]
	}
	if !d.Norms() {
		return dot
	}
	return 2*dot - qn - cn
}

// ScoreAll scores (src, rel) against every row of emb (all entities) and
// returns the scores; used for full-ranking MRR on small graphs
// (paper §7.5 uses all negatives on FB15k-237) and as the serving
// reference. Bitwise identical to the fused chunked path.
func ScoreAll(d Decoder, srcRow, relRow []float32, emb *tensor.Tensor) []float32 {
	out := make([]float32, emb.Rows)
	q := make([]float32, d.Dim())
	d.TailQueryInto(q, srcRow, relRow)
	var qn float32
	if d.Norms() {
		qn = SqNorm(q)
	}
	for v := 0; v < emb.Rows; v++ {
		row := emb.Row(v)
		var cn float32
		if d.Norms() {
			cn = SqNorm(row)
		}
		out[v] = ScoreOne(d, q, row, qn, cn)
	}
	return out
}

// RefScore is the naive reference scorer: it evaluates the decoder's
// textbook definition with scalar loops, no folded query and no fused
// kernel, yet lands on bit-identical float32 results (the fused path
// performs the same multiplies and adds in the same order). Conformance
// tests pin the fused implementations against it.
func RefScore(kind string, src, rel, dst []float32) float32 {
	switch kind {
	case KindDistMult:
		var s float32
		for j := range src {
			s += src[j] * rel[j] * dst[j]
		}
		return s
	case KindComplEx:
		h := len(src) / 2
		var s float32
		for k := 0; k < h; k++ {
			s += (src[k]*rel[k] - src[h+k]*rel[h+k]) * dst[k]
		}
		for k := 0; k < h; k++ {
			s += (src[k]*rel[h+k] + src[h+k]*rel[k]) * dst[h+k]
		}
		return s
	case KindTransE:
		q := make([]float32, len(src))
		for j := range src {
			q[j] = src[j] + rel[j]
		}
		var dot float32
		for j := range q {
			dot += q[j] * dst[j]
		}
		return 2*dot - SqNorm(q) - SqNorm(dst)
	default:
		panic(fmt.Sprintf("decoder: unknown kind %q", kind))
	}
}

// BatchMRR computes the mean reciprocal rank of each positive score
// against its row of negative scores (optimistic-minus-ties ranking: rank
// = 1 + count of strictly greater negatives + half of ties).
func BatchMRR(pos, neg *tensor.Tensor) float64 {
	if pos.Rows == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < pos.Rows; i++ {
		p := pos.At(i, 0)
		rank := 1.0
		for _, s := range neg.Row(i) {
			if s > p {
				rank++
			} else if s == p {
				rank += 0.5
			}
		}
		sum += 1 / rank
	}
	return sum / float64(pos.Rows)
}

// HitsAtK computes the fraction of positives ranked within the top k.
func HitsAtK(pos, neg *tensor.Tensor, k int) float64 {
	if pos.Rows == 0 {
		return 0
	}
	hits := 0
	for i := 0; i < pos.Rows; i++ {
		p := pos.At(i, 0)
		rank := 1
		for _, s := range neg.Row(i) {
			if s > p {
				rank++
			}
		}
		if rank <= k {
			hits++
		}
	}
	return float64(hits) / float64(pos.Rows)
}

// FullRank returns the rank of target among scores (1-based, average-tie).
func FullRank(scores []float32, target int32) float64 {
	p := scores[target]
	rank, ties := 1, 0
	for i, s := range scores {
		if int32(i) == target {
			continue
		}
		if s > p {
			rank++
		} else if s == p {
			ties++
		}
	}
	return float64(rank) + float64(ties)/2
}

// TopK returns the indices of the k highest scores, ordered by score
// descending with ties broken by ascending index — the same deterministic
// tie rule the ranking evaluator uses, so served top-k lists are stable.
func TopK(scores []float32, k int) []int32 {
	return TopKSkip(scores, k, nil)
}

// TopKSkip is TopK over the candidates for which skip returns false
// (skip == nil keeps everything). Serving uses it for filtered top-k:
// known positives are skipped before ranking.
func TopKSkip(scores []float32, k int, skip func(int32) bool) []int32 {
	idx := make([]int32, 0, len(scores))
	for i := range scores {
		if skip == nil || !skip(int32(i)) {
			idx = append(idx, int32(i))
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		if scores[idx[a]] != scores[idx[b]] {
			return scores[idx[a]] > scores[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}
