package decoder

import (
	"math/rand"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// DistMult scores an edge (s, r, d) as ⟨e_s, w_r, e_d⟩ = Σ_j e_s[j]·w_r[j]·e_d[j].
type DistMult struct {
	Rel *nn.Param // [numRels x dim] learned relation embeddings
	dim int
}

// NewDistMult registers relation embeddings in ps.
func NewDistMult(ps *nn.ParamSet, numRels, dim int, rng *rand.Rand) *DistMult {
	p := ps.New("distmult.rel", numRels, dim)
	p.Value.RandUniform(rng, 0.1)
	return &DistMult{Rel: p, dim: dim}
}

// Kind returns "distmult".
func (d *DistMult) Kind() string { return KindDistMult }

// Dim returns the embedding dimensionality.
func (d *DistMult) Dim() int { return d.dim }

// RelParam returns the learned relation table.
func (d *DistMult) RelParam() *nn.Param { return d.Rel }

// Norms reports false: DistMult scores are plain dot products.
func (d *DistMult) Norms() bool { return false }

// TailQueryInto folds (src, rel) into q = src ∘ rel: candidate tails then
// score as ⟨q, e_t⟩.
func (d *DistMult) TailQueryInto(q, src, rel []float32) {
	for j := range q {
		q[j] = src[j] * rel[j]
	}
}

// HeadQueryInto folds (rel, dst) into q = dst ∘ rel (DistMult is
// symmetric in its endpoints).
func (d *DistMult) HeadQueryInto(q, dst, rel []float32) {
	for j := range q {
		q[j] = dst[j] * rel[j]
	}
}

// Loss implements Decoder. Negative scoring uses the fused gather+matmul
// kernel: the looked-up negative embeddings are streamed straight out of
// enc, never materialized as a [N x dim] matrix.
func (d *DistMult) Loss(tp *tensor.Tape, params map[string]*tensor.Node, enc *tensor.Node, srcIdx, dstIdx, negIdx, rels []int32) (loss, posScores, negDst, negSrc *tensor.Node) {
	relRows := tp.Gather(params[d.Rel.Name], rels) // [B x dim]

	srcEnc := tp.Gather(enc, srcIdx)
	dstEnc := tp.Gather(enc, dstIdx)
	srcRel := tp.Mul(srcEnc, relRows) // [B x dim]
	dstRel := tp.Mul(dstEnc, relRows)

	posScores = tp.RowSum(tp.Mul(srcRel, dstEnc))   // [B x 1]
	negDst = tp.GatherMatMulTB(srcRel, enc, negIdx) // [B x N] corrupt destination
	negSrc = tp.GatherMatMulTB(dstRel, enc, negIdx) // [B x N] corrupt source

	loss = ceLoss(tp, posScores, negDst, negSrc, len(srcIdx))
	return loss, posScores, negDst, negSrc
}
