package decoder

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// allKinds lists every decoder kind; conformance tests sweep them all.
var allKinds = []string{KindDistMult, KindComplEx, KindTransE}

func newDecoder(t *testing.T, kind string, numRels, dim int, seed int64) (Decoder, *nn.ParamSet) {
	t.Helper()
	ps := nn.NewParamSet()
	d, err := New(kind, ps, numRels, dim, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("New(%s): %v", kind, err)
	}
	return d, ps
}

// TestNewDecoderErrors pins the constructor's typed failures.
func TestNewDecoderErrors(t *testing.T) {
	ps := nn.NewParamSet()
	rng := rand.New(rand.NewSource(1))
	if _, err := New("rotatE", ps, 2, 8, rng); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := New(KindComplEx, ps, 2, 7, rng); err == nil {
		t.Fatal("odd-dim ComplEx accepted")
	}
	for _, kind := range allKinds {
		if _, err := New(kind, nn.NewParamSet(), 3, 8, rng); err != nil {
			t.Fatalf("New(%s): %v", kind, err)
		}
	}
}

// TestFusedScoringMatchesRefExactly is the kernel conformance contract:
// folded queries scored through the fused GatherMatMulTB chunk (plus the
// norm completion) must equal the naive definitional RefScore scorer bit
// for bit, at every worker count.
func TestFusedScoringMatchesRefExactly(t *testing.T) {
	const (
		numRels = 5
		dim     = 16
		ents    = 64
		batch   = 9
	)
	rng := rand.New(rand.NewSource(7))
	emb := tensor.New(ents, dim)
	emb.RandNormal(rng, 1)

	for _, kind := range allKinds {
		d, _ := newDecoder(t, kind, numRels, dim, 11)
		rel := d.RelParam().Value

		// Batch of (src, rel) tail queries and (dst, rel) head queries.
		queries := tensor.New(2*batch, dim)
		srcs := make([]int32, batch)
		rels := make([]int32, batch)
		for i := 0; i < batch; i++ {
			srcs[i] = int32(rng.Intn(ents))
			rels[i] = int32(rng.Intn(numRels))
			d.TailQueryInto(queries.Row(i), emb.Row(int(srcs[i])), rel.Row(int(rels[i])))
			d.HeadQueryInto(queries.Row(batch+i), emb.Row(int(srcs[i])), rel.Row(int(rels[i])))
		}
		var qn, tn []float32
		if d.Norms() {
			qn = TableNorms(queries)
			tn = TableNorms(emb)
		}

		// Candidate chunk covering every entity, scored at 1..4 workers.
		idx := make([]int32, ents)
		for i := range idx {
			idx[i] = int32(i)
		}
		for workers := 1; workers <= 4; workers++ {
			c := tensor.NewCompute(workers, nil)
			s := c.GatherMatMulTB(queries, emb, idx)
			FinishScores(d, s, qn, tn, idx)
			for i := 0; i < batch; i++ {
				for j := 0; j < ents; j++ {
					wantTail := RefScore(kind, emb.Row(int(srcs[i])), rel.Row(int(rels[i])), emb.Row(j))
					if got := s.At(i, j); got != wantTail {
						t.Fatalf("%s w=%d tail (%d,%d): fused %v != ref %v", kind, workers, i, j, got, wantTail)
					}
					// Head query folds the same triple from the other side:
					// candidate j as head of (rels[i], srcs[i]-as-dst).
					wantHead := RefScore(kind, emb.Row(j), rel.Row(int(rels[i])), emb.Row(int(srcs[i])))
					if got := s.At(batch+i, j); !closeF32(got, wantHead, 1e-4) {
						t.Fatalf("%s w=%d head (%d,%d): fused %v, ref %v", kind, workers, i, j, got, wantHead)
					}
				}
			}
			// ScoreAll (the scalar serving reference) must match the fused
			// tail row bit for bit.
			for i := 0; i < batch; i++ {
				all := ScoreAll(d, emb.Row(int(srcs[i])), rel.Row(int(rels[i])), emb)
				for j := 0; j < ents; j++ {
					if all[j] != s.At(i, j) {
						t.Fatalf("%s w=%d ScoreAll(%d,%d) %v != fused %v", kind, workers, i, j, all[j], s.At(i, j))
					}
				}
			}
		}
	}
}

func closeF32(a, b float32, tol float64) bool {
	diff := math.Abs(float64(a - b))
	scale := math.Max(1, math.Abs(float64(b)))
	return diff/scale <= tol
}

// TestComplExScoreMatchesDefinition checks the folded query against the
// textbook Re(⟨s, r, conj(t)⟩) formula.
func TestComplExScoreMatchesDefinition(t *testing.T) {
	const dim = 8
	rng := rand.New(rand.NewSource(3))
	d, _ := newDecoder(t, KindComplEx, 2, dim, 3)
	src, rel, dst := make([]float32, dim), make([]float32, dim), make([]float32, dim)
	for j := 0; j < dim; j++ {
		src[j], rel[j], dst[j] = rng.Float32(), rng.Float32(), rng.Float32()
	}
	h := dim / 2
	var want float64
	for k := 0; k < h; k++ {
		s := complex(float64(src[k]), float64(src[h+k]))
		r := complex(float64(rel[k]), float64(rel[h+k]))
		c := complex(float64(dst[k]), -float64(dst[h+k]))
		want += real(s * r * c)
	}
	q := make([]float32, dim)
	d.TailQueryInto(q, src, rel)
	got := float64(ScoreOne(d, q, dst, 0, 0))
	if math.Abs(got-want) > 1e-5 {
		t.Fatalf("ComplEx folded score %v, definition %v", got, want)
	}
	// Head query scores the same triple.
	d.HeadQueryInto(q, dst, rel)
	if got2 := float64(ScoreOne(d, q, src, 0, 0)); math.Abs(got2-want) > 1e-5 {
		t.Fatalf("ComplEx head-folded score %v, definition %v", got2, want)
	}
}

// TestTransEScoreMatchesDefinition checks the expanded-norm score against
// the textbook −‖s + r − t‖².
func TestTransEScoreMatchesDefinition(t *testing.T) {
	const dim = 6
	rng := rand.New(rand.NewSource(4))
	d, _ := newDecoder(t, KindTransE, 2, dim, 4)
	src, rel, dst := make([]float32, dim), make([]float32, dim), make([]float32, dim)
	for j := 0; j < dim; j++ {
		src[j], rel[j], dst[j] = rng.Float32(), rng.Float32(), rng.Float32()
	}
	var want float64
	for j := 0; j < dim; j++ {
		diff := float64(src[j]) + float64(rel[j]) - float64(dst[j])
		want -= diff * diff
	}
	q := make([]float32, dim)
	d.TailQueryInto(q, src, rel)
	got := float64(ScoreOne(d, q, dst, SqNorm(q), SqNorm(dst)))
	if math.Abs(got-want) > 1e-4 {
		t.Fatalf("TransE folded score %v, definition %v", got, want)
	}
	d.HeadQueryInto(q, dst, rel)
	if got2 := float64(ScoreOne(d, q, src, SqNorm(q), SqNorm(src))); math.Abs(got2-want) > 1e-4 {
		t.Fatalf("TransE head-folded score %v, definition %v", got2, want)
	}
}

// TestLossMatchesFoldedScores checks, for every decoder, that the
// tape-recorded Loss produces positive and negative scores equal to the
// scalar reference scorer, and that gradients flow to both the encoded
// embeddings and the relation table.
func TestLossMatchesFoldedScores(t *testing.T) {
	const (
		numRels = 3
		dim     = 8
		rows    = 12
	)
	rng := rand.New(rand.NewSource(9))
	enc := tensor.New(rows, dim)
	enc.RandNormal(rng, 1)
	srcIdx, dstIdx := []int32{0, 1, 2}, []int32{3, 4, 5}
	negIdx := []int32{6, 7, 8, 9, 10, 11}
	rels := []int32{0, 2, 1}

	for _, kind := range allKinds {
		d, ps := newDecoder(t, kind, numRels, dim, 13)
		rel := d.RelParam().Value
		tp := tensor.NewTape()
		params := ps.Bind(tp)
		encN := tp.Leaf(enc, true)
		loss, pos, negD, negS := d.Loss(tp, params, encN, srcIdx, dstIdx, negIdx, rels)

		for i := range srcIdx {
			s, dsts, r := enc.Row(int(srcIdx[i])), enc.Row(int(dstIdx[i])), rel.Row(int(rels[i]))
			if want := RefScore(kind, s, r, dsts); !closeF32(pos.Value.At(i, 0), want, 1e-4) {
				t.Fatalf("%s pos[%d] = %v, ref %v", kind, i, pos.Value.At(i, 0), want)
			}
			for n, id := range negIdx {
				cand := enc.Row(int(id))
				if want := RefScore(kind, s, r, cand); !closeF32(negD.Value.At(i, n), want, 1e-4) {
					t.Fatalf("%s negDst[%d][%d] = %v, ref %v", kind, i, n, negD.Value.At(i, n), want)
				}
				if want := RefScore(kind, cand, r, dsts); !closeF32(negS.Value.At(i, n), want, 1e-4) {
					t.Fatalf("%s negSrc[%d][%d] = %v, ref %v", kind, i, n, negS.Value.At(i, n), want)
				}
			}
		}

		tp.Backward(loss)
		if encN.Grad() == nil {
			t.Fatalf("%s: no gradient to encoded embeddings", kind)
		}
		if params[d.RelParam().Name].Grad() == nil {
			t.Fatalf("%s: no gradient to relation embeddings", kind)
		}
	}
}

// TestQTableNormsMatchDequant pins the quantized-table norms to the
// dequantized rows (what the dequantizing score kernel dots against).
func TestQTableNormsMatchDequant(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	tab := tensor.New(9, 6)
	tab.RandNormal(rng, 1)
	for _, kind := range []tensor.QuantKind{tensor.QuantF16, tensor.QuantI8} {
		q := tensor.Quantize(tab, kind)
		got := QTableNorms(q)
		deq := q.Dequant()
		want := TableNorms(deq)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("kind %v row %d: %v != %v", kind, i, got[i], want[i])
			}
		}
	}
}

// TestTopKDeterministicTies pins the tie rule: score descending, index
// ascending, and TopKSkip drops filtered candidates before ranking.
func TestTopKDeterministicTies(t *testing.T) {
	scores := []float32{2, 5, 5, 1, 5, 2}
	got := TopK(scores, 4)
	want := []int32{1, 2, 4, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopK = %v, want %v", got, want)
		}
	}
	skip := func(id int32) bool { return id == 2 || id == 0 }
	got = TopKSkip(scores, 3, skip)
	want = []int32{1, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopKSkip = %v, want %v", got, want)
		}
	}
}
