package decoder

import (
	"fmt"
	"math/rand"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// ComplEx scores an edge (s, r, d) as Re(⟨e_s, w_r, conj(e_d)⟩) over
// complex-valued embeddings (Trouillon et al.). Embeddings use the
// split-half layout: the first dim/2 components are the real parts, the
// last dim/2 the imaginary parts, so every entity row stays a plain
// float32 vector and the fused dot-product kernel applies unchanged once
// the (src, rel) pair is folded into a query:
//
//	q_re = a∘c − b∘d,  q_im = a∘d + b∘c   (s = a+bi, r = c+di)
//	score(t = e+fi) = ⟨q_re, e⟩ + ⟨q_im, f⟩ = ⟨q, e_t⟩
//
// Ranking heads of (r, t) folds the other side: q'_re = c∘e + d∘f,
// q'_im = c∘f − d∘e.
type ComplEx struct {
	Rel *nn.Param // [numRels x dim] relation embeddings, split-half complex
	dim int
}

// NewComplEx registers relation embeddings in ps. dim must be even (the
// embedding splits into real and imaginary halves).
func NewComplEx(ps *nn.ParamSet, numRels, dim int, rng *rand.Rand) (*ComplEx, error) {
	if dim%2 != 0 {
		return nil, fmt.Errorf("decoder: complex requires an even dim, got %d", dim)
	}
	p := ps.New("complex.rel", numRels, dim)
	p.Value.RandUniform(rng, 0.1)
	return &ComplEx{Rel: p, dim: dim}, nil
}

// Kind returns "complex".
func (d *ComplEx) Kind() string { return KindComplEx }

// Dim returns the embedding dimensionality (real + imaginary halves).
func (d *ComplEx) Dim() int { return d.dim }

// RelParam returns the learned relation table.
func (d *ComplEx) RelParam() *nn.Param { return d.Rel }

// Norms reports false: folded ComplEx scores are plain dot products.
func (d *ComplEx) Norms() bool { return false }

// TailQueryInto folds (src, rel) into the tail query.
func (d *ComplEx) TailQueryInto(q, src, rel []float32) {
	h := d.dim / 2
	for k := 0; k < h; k++ {
		q[k] = src[k]*rel[k] - src[h+k]*rel[h+k]
		q[h+k] = src[k]*rel[h+k] + src[h+k]*rel[k]
	}
}

// HeadQueryInto folds (rel, dst) into the head query.
func (d *ComplEx) HeadQueryInto(q, dst, rel []float32) {
	h := d.dim / 2
	for k := 0; k < h; k++ {
		q[k] = rel[k]*dst[k] + rel[h+k]*dst[h+k]
		q[h+k] = rel[k]*dst[h+k] - rel[h+k]*dst[k]
	}
}

// Loss implements Decoder. The tape mirrors the folded-query scoring:
// SliceCols splits the gathered embeddings into halves, the elementwise
// complex product builds the tail and head queries, and the fused
// gather+matmul streams both negative sets out of enc.
func (d *ComplEx) Loss(tp *tensor.Tape, params map[string]*tensor.Node, enc *tensor.Node, srcIdx, dstIdx, negIdx, rels []int32) (loss, posScores, negDst, negSrc *tensor.Node) {
	relRows := tp.Gather(params[d.Rel.Name], rels) // [B x dim]
	srcEnc := tp.Gather(enc, srcIdx)
	dstEnc := tp.Gather(enc, dstIdx)

	h := d.dim / 2
	a, b := tp.SliceCols(srcEnc, 0, h), tp.SliceCols(srcEnc, h, d.dim)
	c, dd := tp.SliceCols(relRows, 0, h), tp.SliceCols(relRows, h, d.dim)
	e, f := tp.SliceCols(dstEnc, 0, h), tp.SliceCols(dstEnc, h, d.dim)

	// Tail query: s·r folded so tails score as a dot product.
	tailQ := tp.ConcatCols(
		tp.Sub(tp.Mul(a, c), tp.Mul(b, dd)),
		tp.Add(tp.Mul(a, dd), tp.Mul(b, c)),
	) // [B x dim]
	// Head query: r·conj(t) folded so heads score as a dot product.
	headQ := tp.ConcatCols(
		tp.Add(tp.Mul(c, e), tp.Mul(dd, f)),
		tp.Sub(tp.Mul(c, f), tp.Mul(dd, e)),
	) // [B x dim]

	posScores = tp.RowSum(tp.Mul(tailQ, dstEnc))   // [B x 1]
	negDst = tp.GatherMatMulTB(tailQ, enc, negIdx) // [B x N] corrupt destination
	negSrc = tp.GatherMatMulTB(headQ, enc, negIdx) // [B x N] corrupt source

	loss = ceLoss(tp, posScores, negDst, negSrc, len(srcIdx))
	return loss, posScores, negDst, negSrc
}
