// Package gen produces the seeded synthetic datasets used throughout the
// reproduction. The paper evaluates on OGB Papers100M, Mag240M-Cites,
// Freebase86M, WikiKG90Mv2, FB15k-237, LiveJournal and the Common Crawl
// 2012 hyperlink graph; none of those can be downloaded in this offline
// environment, so each experiment uses a generator that reproduces the
// structural properties the result depends on:
//
//   - node classification: a stochastic block model with label-correlated
//     features and homophilous edges, so a GraphSage model genuinely learns
//     (accuracy well above chance) and sampling quality affects accuracy;
//   - link prediction: Zipf-degree knowledge graphs whose skew matches
//     Freebase-style KGs, so partition policies see realistic bucket sizes;
//   - LiveJournal stand-in: a preferential-attachment power-law graph;
//   - extreme scale: a streaming generator that never materializes the
//     full edge list.
//
// All generators are deterministic given their seed.
package gen

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// SBMConfig configures a stochastic-block-model node-classification graph.
type SBMConfig struct {
	NumNodes   int
	NumClasses int
	AvgDegree  int     // expected out-degree per node
	FeatureDim int     // base representation dimensionality
	Homophily  float64 // probability an edge stays within its class block
	FeatNoise  float64 // std-dev of feature noise around the class mean
	TrainFrac  float64 // fraction of nodes labeled for training (paper: 1-10%)
	ValidFrac  float64
	TestFrac   float64
	Seed       int64
}

// DefaultSBM returns a Papers100M-shaped configuration scaled to n nodes:
// ~16 edges per node, 128-dim features, strong homophily, 1% train labels.
func DefaultSBM(n int, seed int64) SBMConfig {
	return SBMConfig{
		NumNodes:   n,
		NumClasses: 16,
		AvgDegree:  16,
		FeatureDim: 64,
		Homophily:  0.8,
		FeatNoise:  1.0,
		TrainFrac:  0.05,
		ValidFrac:  0.02,
		TestFrac:   0.05,
		Seed:       seed,
	}
}

// SBM generates the graph. Each node gets a class label; edges connect
// within-class with probability Homophily and to a random class otherwise.
// Features are drawn from a class-specific mean plus Gaussian noise, so a
// GNN that aggregates neighborhoods can exceed a features-only classifier.
func SBM(cfg SBMConfig) *graph.Graph {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.NumNodes
	labels := make([]int32, n)
	for v := range labels {
		labels[v] = int32(rng.Intn(cfg.NumClasses))
	}
	// Bucket nodes by class for fast within-class endpoint sampling.
	byClass := make([][]int32, cfg.NumClasses)
	for v, c := range labels {
		byClass[c] = append(byClass[c], int32(v))
	}

	numEdges := n * cfg.AvgDegree
	edges := make([]graph.Edge, 0, numEdges)
	for len(edges) < numEdges {
		src := int32(rng.Intn(n))
		var dst int32
		if rng.Float64() < cfg.Homophily {
			pool := byClass[labels[src]]
			dst = pool[rng.Intn(len(pool))]
		} else {
			dst = int32(rng.Intn(n))
		}
		if dst == src {
			continue
		}
		edges = append(edges, graph.Edge{Src: src, Dst: dst})
	}

	// Class-mean features with noise. Class means are random unit-ish
	// vectors; noise keeps single-node classification imperfect so that
	// neighborhood aggregation helps.
	means := tensor.New(cfg.NumClasses, cfg.FeatureDim)
	means.RandNormal(rng, 1.0)
	feats := tensor.New(n, cfg.FeatureDim)
	for v := 0; v < n; v++ {
		mrow := means.Row(int(labels[v]))
		frow := feats.Row(v)
		for j := range frow {
			frow[j] = mrow[j] + float32(rng.NormFloat64()*cfg.FeatNoise)
		}
	}

	g := &graph.Graph{
		NumNodes:   n,
		NumRels:    1,
		Edges:      edges,
		Features:   feats,
		Labels:     labels,
		NumClasses: cfg.NumClasses,
	}
	assignSplits(g, rng, cfg.TrainFrac, cfg.ValidFrac, cfg.TestFrac)
	return g
}

// assignSplits partitions node IDs into train/valid/test sets.
func assignSplits(g *graph.Graph, rng *rand.Rand, trainF, validF, testF float64) {
	perm := rng.Perm(g.NumNodes)
	nTrain := int(float64(g.NumNodes) * trainF)
	nValid := int(float64(g.NumNodes) * validF)
	nTest := int(float64(g.NumNodes) * testF)
	for i, v := range perm {
		switch {
		case i < nTrain:
			g.TrainNodes = append(g.TrainNodes, int32(v))
		case i < nTrain+nValid:
			g.ValidNodes = append(g.ValidNodes, int32(v))
		case i < nTrain+nValid+nTest:
			g.TestNodes = append(g.TestNodes, int32(v))
		}
	}
}

// KGConfig configures a Zipf-degree knowledge graph for link prediction.
type KGConfig struct {
	NumEntities  int
	NumRelations int
	NumEdges     int
	ZipfS        float64 // Zipf exponent (>1); higher = more skew
	ValidFrac    float64
	TestFrac     float64
	Seed         int64
}

// FB15k237Scale returns a configuration shaped like FB15k-237
// (14541 entities, 237 relations, 272k edges), optionally scaled by f.
func FB15k237Scale(f float64, seed int64) KGConfig {
	return KGConfig{
		NumEntities:  int(14541 * f),
		NumRelations: max(int(237*f), 8),
		NumEdges:     int(272115 * f),
		ZipfS:        1.2,
		ValidFrac:    0.03,
		TestFrac:     0.05,
		Seed:         seed,
	}
}

// FreebaseScale returns a Freebase86M-shaped configuration scaled down by
// factor (nodes ≈ 86M/factor).
func FreebaseScale(factor int, seed int64) KGConfig {
	return KGConfig{
		NumEntities:  86_000_000 / factor,
		NumRelations: max(14824/factor, 16),
		NumEdges:     338_000_000 / factor,
		ZipfS:        1.3,
		ValidFrac:    0.01,
		TestFrac:     0.02,
		Seed:         seed,
	}
}

// WikiScale returns a WikiKG90Mv2-shaped configuration scaled down by
// factor (nodes ≈ 91M/factor).
func WikiScale(factor int, seed int64) KGConfig {
	return KGConfig{
		NumEntities:  91_000_000 / factor,
		NumRelations: max(1387/factor, 16),
		NumEdges:     601_000_000 / factor,
		ZipfS:        1.25,
		ValidFrac:    0.005,
		TestFrac:     0.01,
		Seed:         seed,
	}
}

// KG generates a knowledge graph. Entity popularity follows a Zipf law so
// that hub entities exist (as in Freebase); relations also follow a skewed
// distribution. Structure is relational: entities belong to latent
// clusters and each relation maps source clusters onto preferred target
// clusters (with 30% noise) — a bilinear pattern that DistMult-style
// models can genuinely learn, so policy quality shows up as MRR.
func KG(cfg KGConfig) *graph.Graph {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n, r := cfg.NumEntities, cfg.NumRelations
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(n-1))
	relZipf := rand.NewZipf(rng, 1.1, 1, uint64(r-1))

	// Latent cluster structure: entity e belongs to cluster e mod k;
	// relation rel maps cluster c onto target cluster relMap[rel][c].
	k := 12
	if n < 2*k {
		k = max(n/2, 1)
	}
	relMap := make([][]int32, r)
	for rel := range relMap {
		relMap[rel] = make([]int32, k)
		for c := range relMap[rel] {
			relMap[rel][c] = int32(rng.Intn(k))
		}
	}

	total := cfg.NumEdges
	edges := make([]graph.Edge, 0, total)
	seen := make(map[graph.Edge]struct{}, total)
	for len(edges) < total {
		src := int32(zipf.Uint64())
		rel := int32(relZipf.Uint64())
		var dst int32
		if rng.Float64() < 0.7 {
			// Structured edge: target drawn from the relation's preferred
			// target cluster for src's cluster.
			tc := relMap[rel][int(src)%k]
			dst = int32(rng.Intn((n-int(tc)+k-1)/k))*int32(k) + tc
		} else {
			dst = int32(zipf.Uint64())
		}
		if dst == src || dst >= int32(n) {
			continue
		}
		e := graph.Edge{Src: src, Rel: rel, Dst: dst}
		if _, dup := seen[e]; dup {
			continue
		}
		seen[e] = struct{}{}
		edges = append(edges, e)
	}

	// Split off valid/test edges.
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	nValid := int(float64(total) * cfg.ValidFrac)
	nTest := int(float64(total) * cfg.TestFrac)
	g := &graph.Graph{
		NumNodes:   n,
		NumRels:    r,
		ValidEdges: append([]graph.Edge(nil), edges[:nValid]...),
		TestEdges:  append([]graph.Edge(nil), edges[nValid:nValid+nTest]...),
		Edges:      append([]graph.Edge(nil), edges[nValid+nTest:]...),
	}
	return g
}

// PowerLaw generates a LiveJournal-like directed power-law graph via a
// preferential-attachment process: node v attaches outDeg edges to targets
// chosen proportionally to in-degree (plus smoothing).
func PowerLaw(numNodes, outDeg int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, 0, numNodes*outDeg)
	// targets repeats node IDs proportionally to their in-degree+1,
	// the classic Barabási–Albert repeated-nodes trick.
	targets := make([]int32, 0, numNodes*(outDeg+1))
	for v := 0; v < numNodes; v++ {
		targets = append(targets, int32(v)) // smoothing entry
		for k := 0; k < outDeg; k++ {
			var dst int32
			if v == 0 {
				break
			}
			dst = targets[rng.Intn(len(targets))]
			if dst == int32(v) {
				dst = int32(rng.Intn(v))
			}
			edges = append(edges, graph.Edge{Src: int32(v), Dst: dst})
			targets = append(targets, dst)
		}
	}
	return &graph.Graph{NumNodes: numNodes, NumRels: 1, Edges: edges}
}

// StreamConfig configures the streaming hyperlink-like generator used by
// the §7.3 extreme-scale experiment. Edges are produced in chunks and
// never fully materialized.
type StreamConfig struct {
	NumNodes  int
	NumEdges  int64
	ZipfS     float64
	ChunkSize int
	Seed      int64
}

// EdgeStream produces seeded chunks of a Zipf-skewed edge stream.
type EdgeStream struct {
	cfg     StreamConfig
	rng     *rand.Rand
	zipf    *rand.Zipf
	emitted int64
	buf     []graph.Edge
}

// NewEdgeStream returns a stream positioned at the first chunk.
func NewEdgeStream(cfg StreamConfig) *EdgeStream {
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = 1 << 16
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	return &EdgeStream{
		cfg:  cfg,
		rng:  rng,
		zipf: rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.NumNodes-1)),
		buf:  make([]graph.Edge, 0, cfg.ChunkSize),
	}
}

// Next returns the next chunk of edges, or nil when the stream is
// exhausted. The returned slice is reused by subsequent calls.
func (s *EdgeStream) Next() []graph.Edge {
	if s.emitted >= s.cfg.NumEdges {
		return nil
	}
	s.buf = s.buf[:0]
	for len(s.buf) < cap(s.buf) && s.emitted < s.cfg.NumEdges {
		src := int32(s.zipf.Uint64())
		dst := int32(s.rng.Intn(s.cfg.NumNodes))
		if src == dst {
			continue
		}
		s.buf = append(s.buf, graph.Edge{Src: src, Dst: dst})
		s.emitted++
	}
	return s.buf
}

// Emitted returns the number of edges produced so far.
func (s *EdgeStream) Emitted() int64 { return s.emitted }
