package gen

import (
	"testing"

	"repro/internal/graph"
)

func TestSBMDeterministicAndValid(t *testing.T) {
	cfg := DefaultSBM(2000, 7)
	g1 := SBM(cfg)
	g2 := SBM(cfg)
	if err := g1.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g1.Edges) != len(g2.Edges) {
		t.Fatal("generator not deterministic")
	}
	for i := range g1.Edges {
		if g1.Edges[i] != g2.Edges[i] {
			t.Fatal("generator not deterministic")
		}
	}
	if !g1.Features.Equal(g2.Features, 0) {
		t.Fatal("features not deterministic")
	}
	if g1.NumClasses != cfg.NumClasses || g1.FeatureDim() != cfg.FeatureDim {
		t.Fatal("metadata wrong")
	}
	wantTrain := int(float64(cfg.NumNodes) * cfg.TrainFrac)
	if len(g1.TrainNodes) != wantTrain {
		t.Fatalf("train nodes = %d, want %d", len(g1.TrainNodes), wantTrain)
	}
}

func TestSBMHomophily(t *testing.T) {
	cfg := DefaultSBM(3000, 9)
	cfg.Homophily = 0.9
	g := SBM(cfg)
	same := 0
	for _, e := range g.Edges {
		if g.Labels[e.Src] == g.Labels[e.Dst] {
			same++
		}
	}
	frac := float64(same) / float64(len(g.Edges))
	// 90% intra-class plus chance collisions on the random 10%.
	if frac < 0.85 {
		t.Fatalf("homophily fraction %.3f too low", frac)
	}
}

func TestSBMSplitsDisjoint(t *testing.T) {
	g := SBM(DefaultSBM(1000, 3))
	seen := map[int32]string{}
	check := func(ids []int32, name string) {
		for _, v := range ids {
			if prev, dup := seen[v]; dup {
				t.Fatalf("node %d in both %s and %s", v, prev, name)
			}
			seen[v] = name
		}
	}
	check(g.TrainNodes, "train")
	check(g.ValidNodes, "valid")
	check(g.TestNodes, "test")
}

func TestKGValidAndSkewed(t *testing.T) {
	cfg := KGConfig{NumEntities: 2000, NumRelations: 16, NumEdges: 20000, ZipfS: 1.3,
		ValidFrac: 0.05, TestFrac: 0.05, Seed: 5}
	g := KG(cfg)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumRels != 16 {
		t.Fatalf("rels = %d", g.NumRels)
	}
	total := len(g.Edges) + len(g.ValidEdges) + len(g.TestEdges)
	if total != cfg.NumEdges {
		t.Fatalf("edges = %d, want %d", total, cfg.NumEdges)
	}
	// No duplicate triples across all splits.
	seen := map[graph.Edge]bool{}
	for _, split := range [][]graph.Edge{g.Edges, g.ValidEdges, g.TestEdges} {
		for _, e := range split {
			if seen[e] {
				t.Fatalf("duplicate triple %+v", e)
			}
			seen[e] = true
		}
	}
	// Zipf skew: the most popular source should appear far above the mean.
	counts := map[int32]int{}
	for _, e := range g.Edges {
		counts[e.Src]++
	}
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	mean := float64(len(g.Edges)) / float64(cfg.NumEntities)
	if float64(maxC) < 10*mean {
		t.Fatalf("degree distribution not skewed: max %d vs mean %.1f", maxC, mean)
	}
}

func TestPowerLawSkew(t *testing.T) {
	g := PowerLaw(5000, 8, 11)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	adj := graph.BuildAdjacency(g.NumNodes, g.Edges)
	maxIn := 0
	for v := 0; v < g.NumNodes; v++ {
		if d := adj.InDegree(int32(v)); d > maxIn {
			maxIn = d
		}
	}
	mean := float64(len(g.Edges)) / float64(g.NumNodes)
	if float64(maxIn) < 20*mean {
		t.Fatalf("power-law hub missing: max in-degree %d vs mean %.1f", maxIn, mean)
	}
}

func TestEdgeStreamExactCountAndDeterminism(t *testing.T) {
	cfg := StreamConfig{NumNodes: 10000, NumEdges: 50000, ZipfS: 1.2, ChunkSize: 4096, Seed: 13}
	s1 := NewEdgeStream(cfg)
	var n1 int64
	var first []graph.Edge
	for chunk := s1.Next(); chunk != nil; chunk = s1.Next() {
		if n1 == 0 {
			first = append(first, chunk...)
		}
		n1 += int64(len(chunk))
		for _, e := range chunk {
			if e.Src < 0 || int(e.Src) >= cfg.NumNodes || e.Dst < 0 || int(e.Dst) >= cfg.NumNodes {
				t.Fatal("edge out of range")
			}
		}
	}
	if n1 != cfg.NumEdges || s1.Emitted() != cfg.NumEdges {
		t.Fatalf("emitted %d, want %d", n1, cfg.NumEdges)
	}
	s2 := NewEdgeStream(cfg)
	chunk := s2.Next()
	for i := range chunk {
		if chunk[i] != first[i] {
			t.Fatal("stream not deterministic")
		}
	}
}

func TestScaledConfigs(t *testing.T) {
	for _, cfg := range []KGConfig{
		FB15k237Scale(0.1, 1),
		FreebaseScale(10000, 1),
		WikiScale(10000, 1),
	} {
		if cfg.NumEntities <= 0 || cfg.NumEdges <= 0 || cfg.NumRelations <= 0 {
			t.Fatalf("bad scaled config: %+v", cfg)
		}
	}
}
