package fault

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// driveSequence runs a fixed op sequence through an injector and
// records the outcome of every op, so two runs can be compared.
func driveSequence(t *testing.T, dir string, in *Injector) []string {
	t.Helper()
	var log []string
	note := func(kind string, n int, err error) {
		log = append(log, fmt.Sprintf("%s n=%d err=%v", kind, n, err))
	}
	f, err := in.Create(filepath.Join(dir, "seq.bin"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	buf := make([]byte, 64)
	for i := range buf {
		buf[i] = byte(i)
	}
	for i := 0; i < 50; i++ {
		n, err := f.WriteAt(buf, int64(i*64))
		note("write", n, err)
	}
	rd := make([]byte, 64)
	for i := 0; i < 50; i++ {
		n, err := f.ReadAt(rd, int64(i*64))
		note("read", n, err)
	}
	f.Close()
	return log
}

func TestInjectorDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, Transient: 0.15, Short: 0.25, ENOSPC: 0.02}
	a := driveSequence(t, t.TempDir(), NewInjector(nil, cfg))
	b := driveSequence(t, t.TempDir(), NewInjector(nil, cfg))
	if len(a) != len(b) {
		t.Fatalf("op logs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d diverged:\n  a: %s\n  b: %s", i, a[i], b[i])
		}
	}
	// A different seed must produce a different schedule (overwhelmingly
	// likely over 100 ops at these rates).
	c := driveSequence(t, t.TempDir(), NewInjector(nil, Config{Seed: 43, Transient: 0.15, Short: 0.25, ENOSPC: 0.02}))
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical fault schedules")
	}
}

func TestInjectorInjectsEachKind(t *testing.T) {
	in := NewInjector(nil, Config{Seed: 7, Transient: 0.2, Short: 0.2, ENOSPC: 0.05})
	f, err := in.Create(filepath.Join(t.TempDir(), "kinds.bin"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 128)
	var sawTransient, sawShort, sawENOSPC bool
	for i := 0; i < 400; i++ {
		n, err := f.WriteAt(buf, 0)
		switch {
		case errors.Is(err, ErrTransient):
			sawTransient = true
		case errors.Is(err, syscall.ENOSPC):
			sawENOSPC = true
		case err == nil && n < len(buf):
			sawShort = true
		}
		if _, err := f.ReadAt(buf, 0); errors.Is(err, ErrTransient) {
			sawTransient = true
		}
	}
	if !sawTransient || !sawShort || !sawENOSPC {
		t.Fatalf("missing fault kinds: transient=%v short=%v enospc=%v", sawTransient, sawShort, sawENOSPC)
	}
	tr, sh, en := in.Injected()
	if tr == 0 || sh == 0 || en == 0 {
		t.Fatalf("injected counters not maintained: %d %d %d", tr, sh, en)
	}
}

func TestCrashAfterWrites(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil, Config{Seed: 3, CrashAfterWrites: 5})
	f, err := in.Create(filepath.Join(dir, "crash.bin"))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	for i := range buf {
		buf[i] = 0xAB
	}
	for i := 0; i < 4; i++ {
		if n, err := f.WriteAt(buf, int64(i*32)); err != nil || n != 32 {
			t.Fatalf("write %d before crash point: n=%d err=%v", i, n, err)
		}
	}
	// The 5th write is torn: a strict prefix lands, the op reports the
	// crash.
	n, err := f.WriteAt(buf, 4*32)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("crash write: err=%v, want ErrCrashed", err)
	}
	if n >= 32 || n < 1 {
		t.Fatalf("crash write landed %d bytes, want a strict prefix", n)
	}
	if !in.Crashed() {
		t.Fatal("injector not marked crashed")
	}
	// Everything after the crash fails.
	if _, err := f.WriteAt(buf, 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write: %v", err)
	}
	if _, err := f.ReadAt(buf, 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash read: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash sync: %v", err)
	}
	if _, err := in.Create(filepath.Join(dir, "other.bin")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash create: %v", err)
	}
	if err := in.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash rename: %v", err)
	}
	f.Close()
	// The on-disk state is the kill -9 state: 4 full writes plus a torn
	// prefix of the 5th.
	st, err := os.Stat(filepath.Join(dir, "crash.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != int64(4*32+n) {
		t.Fatalf("on-disk size %d, want %d (4 writes + %d-byte torn prefix)", st.Size(), 4*32+n, n)
	}
}

func TestIsTransient(t *testing.T) {
	for _, err := range []error{
		ErrTransient,
		fmt.Errorf("wrapped: %w", ErrTransient),
		syscall.EINTR,
		syscall.EAGAIN,
		syscall.ETIMEDOUT,
	} {
		if !IsTransient(err) {
			t.Errorf("IsTransient(%v) = false, want true", err)
		}
	}
	for _, err := range []error{
		nil,
		io.EOF,
		syscall.ENOSPC,
		ErrCrashed,
		os.ErrNotExist,
	} {
		if IsTransient(err) {
			t.Errorf("IsTransient(%v) = true, want false", err)
		}
	}
}

func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "x.bin")
	f, err := OS.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	q := filepath.Join(dir, "y.bin")
	if err := OS.Rename(p, q); err != nil {
		t.Fatal(err)
	}
	g, err := OS.Open(q)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 5)
	if _, err := io.ReadFull(g, got); err != nil || string(got) != "hello" {
		t.Fatalf("read back %q, %v", got, err)
	}
	g.Close()
	if st, err := OS.Stat(q); err != nil || st.Size() != 5 {
		t.Fatalf("stat: %v %v", st, err)
	}
	if err := OS.Remove(q); err != nil {
		t.Fatal(err)
	}
	if _, err := OS.Open(q); err == nil {
		t.Fatal("open after remove succeeded")
	}
	// Or(nil) yields the passthrough.
	if Or(nil) != OS {
		t.Fatal("Or(nil) != OS")
	}
}

func TestLatencyInjection(t *testing.T) {
	in := NewInjector(nil, Config{Seed: 1, Latency: 2 * time.Millisecond, LatencyRate: 1})
	f, err := in.Create(filepath.Join(t.TempDir(), "slow.bin"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	start := time.Now()
	for i := 0; i < 5; i++ {
		if _, err := f.WriteAt([]byte{1}, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("5 writes at 2ms injected latency took %v, want >= 10ms", d)
	}
}
