// Package fault provides a deterministic, seeded fault-injection seam
// for file IO. Storage, checkpointing, and ingest open their files
// through a small FS interface; production code passes OS (a zero-cost
// passthrough to the os package) while tests and the chaos harness pass
// an Injector that returns transient errors, short reads and writes,
// torn writes, ENOSPC, latency spikes, or a hard "crash after N writes"
// — every decision a pure function of the configured seed and a global
// operation counter, so a failing schedule replays exactly from its
// seed.
//
// The crash model matches kill -9 semantics: the Nth write lands a
// seeded prefix of its buffer (a torn write) and every subsequent
// operation on the injector fails with ErrCrashed, leaving on disk
// exactly the state an abrupt process death would. Recovery code is
// then exercised by reopening the same directory through a fresh FS.
package fault

import (
	"errors"
	"io"
	"math/rand"
	"os"
	"sync/atomic"
	"syscall"
	"time"
)

// File is the subset of *os.File the repo's IO paths need. *os.File
// satisfies it directly; injected files wrap one.
type File interface {
	io.Reader
	io.Writer
	io.ReaderAt
	io.WriterAt
	io.Closer
	Sync() error
	Name() string
	Stat() (os.FileInfo, error)
	Chmod(mode os.FileMode) error
}

// FS is the file-opening seam threaded through storage, ckpt, and
// dataset ingest. OS is the production implementation; an Injector
// wraps another FS with seeded faults.
type FS interface {
	Create(name string) (File, error)
	Open(name string) (File, error)
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Stat(name string) (os.FileInfo, error)
}

// OS is the passthrough FS over the real filesystem. It adds one
// interface dispatch per operation on syscall-bound paths — no
// measurable cost — and injects nothing.
var OS FS = osFS{}

// Or returns fsys, or OS when fsys is nil, so call sites can thread an
// optional FS without nil checks.
func Or(fsys FS) FS {
	if fsys == nil {
		return OS
	}
	return fsys
}

type osFS struct{}

func (osFS) Create(name string) (File, error) {
	f, err := os.Create(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) Stat(name string) (os.FileInfo, error) {
	return os.Stat(name)
}

// ErrTransient marks an injected fault that a bounded retry should
// absorb. Storage's retry loop treats it (and EINTR-class errnos) as
// retryable; everything else is fatal.
var ErrTransient = errors.New("fault: injected transient IO error")

// ErrCrashed marks every operation after the injector's crash point
// fired. It is fatal by design: the process under test is "dead", and
// the test harness reopens the directory through a fresh FS to recover.
var ErrCrashed = errors.New("fault: crashed (injected)")

// IsTransient reports whether err is worth a bounded retry: an injected
// ErrTransient or an EINTR/EAGAIN/ETIMEDOUT-class errno. Corruption,
// ENOSPC, ErrCrashed, and plain unknown errors are fatal.
func IsTransient(err error) bool {
	if errors.Is(err, ErrTransient) {
		return true
	}
	return errors.Is(err, syscall.EINTR) || errors.Is(err, syscall.EAGAIN) ||
		errors.Is(err, syscall.ETIMEDOUT)
}

// Config tunes an Injector. All probabilities are in [0, 1] and are
// evaluated deterministically from Seed and the injector's operation
// counter; the zero value injects nothing.
type Config struct {
	// Seed derives every injection decision. Two injectors with the
	// same Config over the same operation sequence inject identically.
	Seed int64
	// Transient is the probability a read or write returns (0, error
	// wrapping ErrTransient) — the op made no progress and a retry
	// should succeed.
	Transient float64
	// Short is the probability a read or write transfers only a seeded
	// prefix and returns nil error — the partial-IO case POSIX permits
	// and naive single-shot callers mishandle.
	Short float64
	// ENOSPC is the probability a write fails with syscall.ENOSPC
	// (fatal: retrying cannot help).
	ENOSPC float64
	// Latency and LatencyRate inject a Latency-long stall into a
	// fraction LatencyRate of operations — slow-disk weather for
	// deadline and shedding tests.
	Latency     time.Duration
	LatencyRate float64
	// CrashAfterWrites, when > 0, makes the Nth write (counted across
	// all files) a torn write — a seeded prefix lands, the op returns
	// ErrCrashed — after which every operation fails with ErrCrashed.
	CrashAfterWrites int64
}

// Injector is an FS that wraps another FS with seeded fault injection.
// It is safe for concurrent use; decisions are serialized through an
// atomic operation counter so a given (seed, op-index) pair always
// resolves the same way.
type Injector struct {
	inner FS
	cfg   Config

	ops     atomic.Int64 // decision counter: one per read/write op
	writes  atomic.Int64 // write ops, for crash-point accounting
	crashed atomic.Bool

	transients atomic.Int64
	shorts     atomic.Int64
	enospcs    atomic.Int64
}

// NewInjector wraps inner (nil means OS) with the faults in cfg.
func NewInjector(inner FS, cfg Config) *Injector {
	return &Injector{inner: Or(inner), cfg: cfg}
}

// Writes returns the number of write operations observed so far. An
// instrumented clean run's total bounds the kill points a crash test
// may choose from.
func (in *Injector) Writes() int64 { return in.writes.Load() }

// Crashed reports whether the crash point has fired.
func (in *Injector) Crashed() bool { return in.crashed.Load() }

// Injected returns the cumulative injected-fault counts.
func (in *Injector) Injected() (transients, shorts, enospcs int64) {
	return in.transients.Load(), in.shorts.Load(), in.enospcs.Load()
}

// splitmix64 is the standard 64-bit finalizer; it turns (seed, op)
// into an independent uniform word.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// roll draws the deterministic uniform in [0, 1) for the next op.
func (in *Injector) roll() (op int64, u float64) {
	op = in.ops.Add(1)
	w := splitmix64(uint64(in.cfg.Seed) ^ uint64(op)*0xD1B54A32D192ED03)
	return op, float64(w>>11) / (1 << 53)
}

// prefixLen picks the seeded torn/short transfer length in [1, n-1]
// (or n when n < 2, where a partial transfer is impossible).
func (in *Injector) prefixLen(op int64, n int) int {
	if n < 2 {
		return n
	}
	w := splitmix64(uint64(in.cfg.Seed)*0x9E3779B97F4A7C15 ^ uint64(op))
	return 1 + int(w%uint64(n-1))
}

func (in *Injector) maybeStall(u float64) {
	if in.cfg.Latency > 0 && in.cfg.LatencyRate > 0 && u < in.cfg.LatencyRate {
		time.Sleep(in.cfg.Latency)
	}
}

// readFault decides the fate of one read of n bytes: inject=false means
// pass through; otherwise transfer `take` bytes and return err.
func (in *Injector) readFault(n int) (take int, err error, inject bool) {
	if in.crashed.Load() {
		return 0, ErrCrashed, true
	}
	op, u := in.roll()
	in.maybeStall(u)
	switch {
	case u < in.cfg.Transient:
		in.transients.Add(1)
		return 0, ErrTransient, true
	case u < in.cfg.Transient+in.cfg.Short && n >= 2:
		in.shorts.Add(1)
		return in.prefixLen(op, n), nil, true
	}
	return 0, nil, false
}

// writeFault decides the fate of one write of n bytes. take is the
// number of bytes to actually write to the inner file (torn writes land
// a prefix before failing).
func (in *Injector) writeFault(n int) (take int, err error, inject bool) {
	if in.crashed.Load() {
		return 0, ErrCrashed, true
	}
	w := in.writes.Add(1)
	op, u := in.roll()
	in.maybeStall(u)
	if in.cfg.CrashAfterWrites > 0 && w >= in.cfg.CrashAfterWrites {
		in.crashed.Store(true)
		return in.prefixLen(op, n), ErrCrashed, true // torn: prefix lands, then dead
	}
	switch {
	case u < in.cfg.Transient:
		in.transients.Add(1)
		// Torn transient write: a prefix may land before the error, as
		// with a real interrupted write; the retry loop must re-issue
		// the tail, not the whole buffer.
		return in.prefixLen(op, n) / 2, ErrTransient, true
	case u < in.cfg.Transient+in.cfg.ENOSPC:
		in.enospcs.Add(1)
		return 0, syscall.ENOSPC, true
	case u < in.cfg.Transient+in.cfg.ENOSPC+in.cfg.Short && n >= 2:
		in.shorts.Add(1)
		return in.prefixLen(op, n), nil, true
	}
	return 0, nil, false
}

// metaErr gates non-data operations (open, rename, sync, ...): they
// never fault transiently, but after the crash point everything fails.
func (in *Injector) metaErr() error {
	if in.crashed.Load() {
		return ErrCrashed
	}
	return nil
}

func (in *Injector) Create(name string) (File, error) {
	if err := in.metaErr(); err != nil {
		return nil, err
	}
	f, err := in.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, in: in}, nil
}

func (in *Injector) Open(name string) (File, error) {
	if err := in.metaErr(); err != nil {
		return nil, err
	}
	f, err := in.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, in: in}, nil
}

func (in *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if err := in.metaErr(); err != nil {
		return nil, err
	}
	f, err := in.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, in: in}, nil
}

func (in *Injector) CreateTemp(dir, pattern string) (File, error) {
	if err := in.metaErr(); err != nil {
		return nil, err
	}
	f, err := in.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, in: in}, nil
}

func (in *Injector) Rename(oldpath, newpath string) error {
	if err := in.metaErr(); err != nil {
		return err
	}
	return in.inner.Rename(oldpath, newpath)
}

func (in *Injector) Remove(name string) error {
	if err := in.metaErr(); err != nil {
		return err
	}
	return in.inner.Remove(name)
}

func (in *Injector) Stat(name string) (os.FileInfo, error) {
	if err := in.metaErr(); err != nil {
		return nil, err
	}
	return in.inner.Stat(name)
}

// faultFile routes every data op through the injector's decision
// machinery before (possibly) touching the wrapped file.
type faultFile struct {
	f  File
	in *Injector
}

func (ff *faultFile) Read(p []byte) (int, error) {
	if take, err, inject := ff.in.readFault(len(p)); inject {
		if take > 0 {
			n, rerr := ff.f.Read(p[:take])
			if rerr != nil {
				return n, rerr
			}
			return n, err
		}
		return 0, err
	}
	return ff.f.Read(p)
}

func (ff *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if take, err, inject := ff.in.readFault(len(p)); inject {
		if take > 0 {
			n, rerr := ff.f.ReadAt(p[:take], off)
			if rerr != nil {
				return n, rerr
			}
			return n, err
		}
		return 0, err
	}
	return ff.f.ReadAt(p, off)
}

func (ff *faultFile) Write(p []byte) (int, error) {
	if take, err, inject := ff.in.writeFault(len(p)); inject {
		if take > 0 {
			n, werr := ff.f.Write(p[:take])
			if werr != nil {
				return n, werr
			}
			return n, err
		}
		return 0, err
	}
	return ff.f.Write(p)
}

func (ff *faultFile) WriteAt(p []byte, off int64) (int, error) {
	if take, err, inject := ff.in.writeFault(len(p)); inject {
		if take > 0 {
			n, werr := ff.f.WriteAt(p[:take], off)
			if werr != nil {
				return n, werr
			}
			return n, err
		}
		return 0, err
	}
	return ff.f.WriteAt(p, off)
}

func (ff *faultFile) Close() error {
	// Close always reaches the real file — leaking descriptors would
	// make crash tests flaky — but reports the crash afterwards.
	err := ff.f.Close()
	if ff.in.crashed.Load() {
		return ErrCrashed
	}
	return err
}

func (ff *faultFile) Sync() error {
	if err := ff.in.metaErr(); err != nil {
		return err
	}
	return ff.f.Sync()
}

func (ff *faultFile) Name() string                 { return ff.f.Name() }
func (ff *faultFile) Stat() (os.FileInfo, error)   { return ff.f.Stat() }
func (ff *faultFile) Chmod(mode os.FileMode) error { return ff.f.Chmod(mode) }

// Rand returns a deterministic RNG derived from the injector's seed,
// for harnesses that need auxiliary randomness (e.g. picking kill
// points) without touching the injection stream.
func (in *Injector) Rand() *rand.Rand {
	return rand.New(rand.NewSource(int64(splitmix64(uint64(in.cfg.Seed)))))
}
