// Package autotune implements the hyperparameter rules of paper §6 for
// disk-based training: the number of physical partitions p, the buffer
// capacity c, and the number of logical partitions l are derived from the
// graph size, representation dimensionality, CPU memory and disk block
// size — eliminating the grid search evaluated in paper Fig. 8.
package autotune

import (
	"fmt"
	"math"
)

// Input describes the graph and machine.
type Input struct {
	NumNodes int
	NumEdges int
	Dim      int // base representation dimensionality
	// NodeElemBytes is the stored size of one representation element
	// (0 means 4, float32; 2 for fp16 and 1 for int8 quantized feature
	// tables, which shrink NO and with it the partition-swap IO the §6
	// rules balance against compute).
	NodeElemBytes int
	BytesPerEdge  int   // 12 for (src, rel, dst) int32 triples
	CPUBytes      int64 // usable CPU memory for the partition buffer
	BlockBytes    int64 // disk block size D (e.g., 512 KiB for EBS-like volumes)
	FudgeBytes    int64 // working-memory reserve F
}

// Result is the tuned configuration.
type Result struct {
	P int // physical partitions
	C int // buffer capacity (physical partitions)
	L int // logical partitions
	// Alpha4 is min(NO/D, sqrt(EO/D)), the partition count at which the
	// smallest disk read shrinks to one block (paper §6).
	Alpha4 float64
	// NodeBytes and EdgeBytes are the total storage overheads NO and EO.
	NodeBytes, EdgeBytes int64
}

// Tune applies the §6 rules:
//
//	NO = |V|·d·elemBytes, EO = |E|·bytesPerEdge
//	α4 = min(NO/D, √(EO/D)); p = α4
//	maximize c s.t. c·PO + 2c²·EBO + F < CPU
//	l = 2p/c  (so the buffer holds c_l = 2 logical partitions)
//
// p, c and l are rounded to satisfy COMET's divisibility constraints
// (l | p, (p/l) | c) while staying as close to the rule values as possible.
func Tune(in Input) (Result, error) {
	if in.NumNodes <= 0 || in.NumEdges <= 0 || in.Dim <= 0 {
		return Result{}, fmt.Errorf("autotune: graph dimensions must be positive")
	}
	if in.BytesPerEdge == 0 {
		in.BytesPerEdge = 12
	}
	if in.BlockBytes == 0 {
		in.BlockBytes = 512 << 10
	}
	if in.NodeElemBytes == 0 {
		in.NodeElemBytes = 4
	}
	no := int64(in.NumNodes) * int64(in.Dim) * int64(in.NodeElemBytes)
	eo := int64(in.NumEdges) * int64(in.BytesPerEdge)
	alpha4 := math.Min(float64(no)/float64(in.BlockBytes), math.Sqrt(float64(eo)/float64(in.BlockBytes)))
	p := int(alpha4)
	if p < 4 {
		p = 4
	}

	// Search near the rule point for a feasible (p, c, l) triple: maximize
	// the buffer capacity, then keep l closest to the 2p/c rule (prime p
	// values admit only degenerate l, so neighbors of the rule's p are
	// considered too).
	best := Result{}
	bestLDist := math.Inf(1)
	for pc := p; pc >= 4 && pc >= p-8; pc-- {
		c := maxCapacity(pc, no, eo, in.CPUBytes, in.FudgeBytes)
		if c < 2 {
			continue
		}
		if c > pc {
			c = pc
		}
		l := feasibleL(pc, c)
		if l == 0 {
			continue
		}
		lDist := math.Abs(float64(l) - float64(2*pc)/float64(c))
		if best.P == 0 || c > best.C || (c == best.C && lDist < bestLDist) {
			best = Result{P: pc, C: c, L: l, Alpha4: alpha4, NodeBytes: no, EdgeBytes: eo}
			bestLDist = lDist
		}
	}
	if best.P == 0 {
		return Result{}, fmt.Errorf("autotune: no feasible configuration (CPU memory %d too small?)", in.CPUBytes)
	}
	return best, nil
}

// maxCapacity returns the largest c with c·PO + 2c²·EBO + F < CPU.
func maxCapacity(p int, no, eo, cpu, fudge int64) int {
	po := no / int64(p)
	ebo := eo / int64(p*p)
	c := 0
	for cand := 1; cand <= p; cand++ {
		used := int64(cand)*po + 2*int64(cand)*int64(cand)*ebo + fudge
		if used < cpu {
			c = cand
		} else {
			break
		}
	}
	return c
}

// feasibleL returns the number of logical partitions closest to 2p/c that
// satisfies COMET's constraints: l | p, (p/l) | c, and c/(p/l) ≥ 2.
// It returns 0 if none exists.
func feasibleL(p, c int) int {
	want := float64(2*p) / float64(c)
	best, bestDist := 0, math.Inf(1)
	for l := 1; l <= p; l++ {
		if p%l != 0 {
			continue
		}
		group := p / l
		if c%group != 0 || c/group < 2 {
			continue
		}
		if d := math.Abs(float64(l) - want); d < bestDist {
			best, bestDist = l, d
		}
	}
	return best
}

// GridPoint is one configuration evaluated by the Fig. 8 grid search.
type GridPoint struct {
	P, C, L int
}

// Grid enumerates every feasible (p, c, l) combination from the given
// candidate lists, for the auto-tuning-vs-grid-search comparison.
func Grid(ps, cs []int) []GridPoint {
	var out []GridPoint
	for _, p := range ps {
		for _, c := range cs {
			if c < 2 || c > p {
				continue
			}
			for l := 1; l <= p; l++ {
				if p%l != 0 {
					continue
				}
				group := p / l
				if c%group != 0 || c/group < 2 {
					continue
				}
				out = append(out, GridPoint{P: p, C: c, L: l})
			}
		}
	}
	return out
}
