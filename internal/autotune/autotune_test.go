package autotune

import (
	"math"
	"testing"
)

func TestTuneProducesFeasibleComet(t *testing.T) {
	res, err := Tune(Input{
		NumNodes: 1_000_000, NumEdges: 10_000_000, Dim: 64,
		CPUBytes: 64 << 20, BlockBytes: 64 << 10, FudgeBytes: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 4 || res.C < 2 || res.L < 1 {
		t.Fatalf("implausible tuning: %+v", res)
	}
	// COMET structural constraints.
	if res.P%res.L != 0 {
		t.Fatalf("l=%d does not divide p=%d", res.L, res.P)
	}
	group := res.P / res.L
	if res.C%group != 0 || res.C/group < 2 {
		t.Fatalf("buffer %d incompatible with group size %d", res.C, group)
	}
	// Memory constraint: c·PO + 2c²·EBO + F < CPU.
	po := res.NodeBytes / int64(res.P)
	ebo := res.EdgeBytes / int64(res.P*res.P)
	used := int64(res.C)*po + 2*int64(res.C*res.C)*ebo + (1 << 20)
	if used >= 64<<20 {
		t.Fatalf("tuned configuration exceeds memory: %d", used)
	}
}

func TestTuneLRule(t *testing.T) {
	// When feasible exactly, l should be near 2p/c.
	res, err := Tune(Input{
		NumNodes: 500_000, NumEdges: 4_000_000, Dim: 32,
		CPUBytes: 32 << 20, BlockBytes: 128 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := float64(2*res.P) / float64(res.C)
	got := float64(res.L)
	if got < want/2 || got > want*2 {
		t.Fatalf("l=%d too far from rule value %.1f (p=%d c=%d)", res.L, want, res.P, res.C)
	}
}

func TestTuneInsufficientMemory(t *testing.T) {
	_, err := Tune(Input{
		NumNodes: 1_000_000, NumEdges: 10_000_000, Dim: 128,
		CPUBytes: 1 << 10, BlockBytes: 4 << 10,
	})
	if err == nil {
		t.Fatal("expected infeasibility error")
	}
}

func TestTuneRejectsBadInput(t *testing.T) {
	if _, err := Tune(Input{}); err == nil {
		t.Fatal("expected error for empty input")
	}
}

func TestGridOnlyFeasiblePoints(t *testing.T) {
	pts := Grid([]int{8, 16}, []int{2, 4, 8})
	if len(pts) == 0 {
		t.Fatal("empty grid")
	}
	for _, gp := range pts {
		if gp.P%gp.L != 0 {
			t.Fatalf("infeasible point %+v", gp)
		}
		group := gp.P / gp.L
		if gp.C%group != 0 || gp.C/group < 2 {
			t.Fatalf("infeasible point %+v", gp)
		}
	}
}

func TestAlpha4Definition(t *testing.T) {
	in := Input{
		NumNodes: 1 << 20, NumEdges: 1 << 23, Dim: 64,
		CPUBytes: 1 << 30, BlockBytes: 1 << 19,
	}
	res, err := Tune(in)
	if err != nil {
		t.Fatal(err)
	}
	no := float64(int64(in.NumNodes) * int64(in.Dim) * 4)
	eo := float64(int64(in.NumEdges) * 12)
	want := math.Min(no/float64(in.BlockBytes), math.Sqrt(eo/float64(in.BlockBytes)))
	if math.Abs(res.Alpha4-want) > 1e-9 {
		t.Fatalf("alpha4 = %v, want %v", res.Alpha4, want)
	}
}
