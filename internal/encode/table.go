package encode

import (
	"repro/internal/graph"
	"repro/internal/tensor"
)

// tableChunk is the node-range chunk width for full-table encodes. Each
// chunk is sampled with its own derived seed, so the table is a pure
// function of (params, adjacency, seed) regardless of chunk scheduling.
const tableChunk = 1024

// FullTable precomputes the encoded representation of every entity in
// [0, n): the node range pushed through a dedicated Forward in fixed
// chunks with per-chunk seeds (seed+base), so the result is identical at
// every worker count. With no encoder the base rows are gathered
// directly. Both the serving snapshot (top-k scoring table) and the
// ranking evaluator (GNN candidate table) build their tables here, which
// keeps the two bit-identical for the same checkpoint state and seed.
func FullTable(cfg Config, adj graph.Index, store Store, n, dim int, seed int64) (*tensor.Tensor, error) {
	out := tensor.New(n, dim)
	fwd := New(cfg, adj, seed)
	ids := make([]int32, 0, tableChunk)
	for base := 0; base < n; base += tableChunk {
		end := min(base+tableChunk, n)
		ids = ids[:0]
		for v := base; v < end; v++ {
			ids = append(ids, int32(v))
		}
		var enc *tensor.Node
		var err error
		if cfg.Encoder == nil {
			enc, err = fwd.EncodeIDs(store, ids)
			if err != nil {
				return nil, err
			}
		} else {
			d := fwd.SampleSeeded(seed+int64(base), ids)
			enc, err = fwd.EncodeDense(store, d)
			if err != nil {
				return nil, err
			}
			fwd.Recycle(d)
		}
		copy(out.Data[base*dim:end*dim], enc.Value.Data[:len(ids)*dim])
	}
	return out, nil
}
