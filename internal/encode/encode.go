// Package encode is the forward-only GNN encode path shared by training
// (the trainers' compute stage and train/eval.go) and online serving
// (internal/serve): sample a k-hop DENSE neighborhood, gather base
// representations, and run the encoder forward on an arena-backed tape.
// Extracting it keeps the encoders single-sourced — serving runs exactly
// the kernels evaluation runs, so served outputs are byte-identical to
// the training-side forward pass for the same checkpoint and sample —
// without dragging the trainers' batch-recycling machinery along.
package encode

import (
	"repro/internal/gnn"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/sampler"
	"repro/internal/tensor"
)

// Store is the row-gather surface base representations are read from.
// storage.NodeStore satisfies it (features or learnable embeddings, in
// memory or partition-buffered on disk); TensorStore adapts a plain
// in-memory table.
type Store interface {
	Dim() int
	Gather(ids []int32, out *tensor.Tensor) error
}

// TensorStore adapts a plain tensor to Store: row i of the gather output
// is row ids[i] of T.
type TensorStore struct{ T *tensor.Tensor }

// Dim returns the table width.
func (s TensorStore) Dim() int { return s.T.Cols }

// Gather copies the selected rows of T into out.
func (s TensorStore) Gather(ids []int32, out *tensor.Tensor) error {
	d := s.T.Cols
	for i, id := range ids {
		copy(out.Data[i*d:(i+1)*d], s.T.Row(int(id)))
	}
	return nil
}

// QuantStore adapts an in-memory quantized table to Store, dequantizing
// rows on gather. Dequantization is a pure per-element function of bytes
// fixed at ingest, so outputs are byte-identical to gathering the
// equivalent dequantized float32 table — at half (fp16) or a quarter
// (int8) of its resident memory.
type QuantStore struct{ Q *tensor.QTable }

// Dim returns the table width.
func (s QuantStore) Dim() int { return s.Q.Cols }

// Gather dequantizes the selected rows of Q into out.
func (s QuantStore) Gather(ids []int32, out *tensor.Tensor) error {
	d := s.Q.Cols
	for i, id := range ids {
		s.Q.DequantRowInto(int(id), out.Data[i*d:(i+1)*d])
	}
	return nil
}

// Config describes the model half of a forward pass.
type Config struct {
	// Encoder is the GNN encoder; nil means identity encode (decoder-only
	// models read base representations directly).
	Encoder *gnn.Encoder
	Params  *nn.ParamSet
	Fanouts []int
	Dirs    graph.Directions
	// Workers is the kernel fan-out; <= 0 means GOMAXPROCS. Kernels are
	// bitwise deterministic at every worker count.
	Workers int
}

// Forward owns the forward-only encode state: one sampler, one arena and
// one tape, recycled every call like the training compute stage. It is
// not safe for concurrent use; each evaluation or serving dispatcher owns
// its own.
type Forward struct {
	cfg   Config
	smp   *sampler.Sampler
	arena *tensor.Arena
	tp    *tensor.Tape
	binds map[string]*tensor.Node
}

// New builds a Forward over adj. When cfg.Encoder is set, the sampler is
// seeded with seed and its RNG stream runs continuously across Sample
// calls (the evaluation contract); serving reseeds per request with
// SampleSeeded instead.
func New(cfg Config, adj graph.Index, seed int64) *Forward {
	f := &Forward{cfg: cfg}
	if cfg.Encoder != nil {
		f.smp = sampler.New(adj, cfg.Fanouts, cfg.Dirs, seed)
	}
	f.arena = tensor.NewArena()
	f.tp = tensor.NewTapeWith(tensor.NewCompute(cfg.Workers, f.arena))
	return f
}

// Tape returns the tape the last encode ran on, for decoder calls that
// extend the same batch's graph.
func (f *Forward) Tape() *tensor.Tape { return f.tp }

// Binds returns the parameter bindings of the last encode.
func (f *Forward) Binds() map[string]*tensor.Node { return f.binds }

// Sample draws the multi-hop DENSE neighborhood of targets from the
// Forward's continuous RNG stream. Targets must be unique.
func (f *Forward) Sample(targets []int32) *sampler.DENSE { return f.smp.Sample(targets) }

// SampleSeeded reseeds the sampler, then samples: the serving path, where
// a request's neighborhood must be a pure function of (adjacency,
// targets, seed) — independent of whatever was sampled before it and of
// which requests it is micro-batched with.
func (f *Forward) SampleSeeded(seed int64, targets []int32) *sampler.DENSE {
	f.smp.Reseed(seed)
	return f.smp.Sample(targets)
}

// Recycle returns a DENSE obtained from Sample/SampleSeeded to the
// sampler's free list.
func (f *Forward) Recycle(d *sampler.DENSE) { f.smp.Recycle(d) }

// EncodeDense runs the forward pass over an already-sampled DENSE: reset
// the tape and arena, gather base representations for d.NodeIDs from
// store, and encode. The returned node (one output row per target, in
// d's target order) is valid until the next encode on this Forward.
func (f *Forward) EncodeDense(store Store, d *sampler.DENSE) (*tensor.Node, error) {
	f.tp.Reset()
	f.arena.Reset()
	h0t := f.tp.Alloc(len(d.NodeIDs), store.Dim())
	if err := store.Gather(d.NodeIDs, h0t); err != nil {
		return nil, err
	}
	f.binds = f.cfg.Params.BindInto(f.tp, f.binds)
	return f.cfg.Encoder.Forward(f.tp, f.binds, d, f.tp.Constant(h0t)), nil
}

// EncodeIDs is the identity encode for decoder-only models: gather rows
// for ids and bind parameters, with no sampling or encoder forward.
func (f *Forward) EncodeIDs(store Store, ids []int32) (*tensor.Node, error) {
	f.tp.Reset()
	f.arena.Reset()
	h0t := f.tp.Alloc(len(ids), store.Dim())
	if err := store.Gather(ids, h0t); err != nil {
		return nil, err
	}
	f.binds = f.cfg.Params.BindInto(f.tp, f.binds)
	return f.tp.Constant(h0t), nil
}

// Encode samples targets from the continuous stream and encodes them
// (or, with no encoder, gathers their base rows directly): one
// evaluation batch.
func (f *Forward) Encode(store Store, targets []int32) (*tensor.Node, error) {
	if f.cfg.Encoder == nil {
		return f.EncodeIDs(store, targets)
	}
	return f.EncodeDense(store, f.Sample(targets))
}

// Apply dispatches the encoder forward over whichever sample structure a
// training batch carries: DENSE (the paper's fused path), a layered
// baseline sample, or neither (identity encode for decoder-only models).
// It is the single dispatch point shared by both trainers' compute
// stages.
func Apply(tp *tensor.Tape, params map[string]*tensor.Node, enc *gnn.Encoder, d *sampler.DENSE, ls *sampler.LayeredSample, h0 *tensor.Node) *tensor.Node {
	switch {
	case d != nil:
		return enc.Forward(tp, params, d, h0)
	case ls != nil:
		return gnn.BaselineForward(tp, params, enc, ls, h0)
	default:
		return h0
	}
}
