GO ?= go

.PHONY: build test race bench-kernels bench-baseline check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full-epoch NC/LP pipelines and the kernel fan-out under the race
# detector (the kernels spawn real goroutines even at GOMAXPROCS=1).
race:
	$(GO) test -race ./...

# Short-mode kernel benchmarks with hard floors: >=2x blocked-matmul
# throughput at 4 workers vs the naive reference, and 0 allocs/batch in
# the arena training step. Writes to /tmp so the checked-in full-shape
# baseline is never clobbered with incomparable short-mode numbers.
bench-kernels:
	$(GO) run ./cmd/benchkernels -short -check -o /tmp/BENCH_kernels.json

# Refresh the checked-in full-shape baseline (commit the result).
bench-baseline:
	$(GO) run ./cmd/benchkernels -check -o BENCH_kernels.json

check: build test race bench-kernels
