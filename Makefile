GO ?= go

.PHONY: build test race race-pipeline race-fault bench-kernels bench-pipeline bench-sampler bench-ingest bench-serve bench-fault bench-eval bench-baseline check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full-epoch NC/LP pipelines and the kernel fan-out under the race
# detector (the kernels spawn real goroutines even at GOMAXPROCS=1).
race:
	$(GO) test -race ./...

# Short-mode kernel benchmarks with hard floors: >=2x blocked-matmul
# throughput at 4 workers vs the naive reference, >=1.2x fused
# dequantizing score vs materialize-then-score (fp16 and int8), and 0
# allocs/batch in the arena training step. Writes to /tmp so the
# checked-in full-shape baseline is never clobbered with incomparable
# short-mode numbers.
bench-kernels:
	$(GO) run ./cmd/benchkernels -short -check -o /tmp/BENCH_kernels.json

# Race coverage focused on the pipelined epoch executor: the executor's
# own ordering/bounding/abort tests plus full NC and LP epochs with
# WithPipeline(2) and WithWorkers(4).
race-pipeline:
	$(GO) test -race ./internal/pipeline/
	$(GO) test -race -run Pipeline ./marius/

# Short-mode pipeline benchmark with hard floors: >=1.5x epoch speedup
# over the serial loop under a calibrated disk throttle, a loss
# trajectory identical to the serial run (the equivalence contract),
# and an instrumentation probe — metrics + tracing must stay under a 2%
# hot-path overhead bound and leave losses untouched. Writes to /tmp so
# the checked-in full-size baseline is never clobbered.
bench-pipeline:
	$(GO) run ./cmd/benchpipeline -short -check -o /tmp/BENCH_pipeline.json

# Short-mode sampling benchmark with hard floors: >=2x per-visit
# adjacency refresh via the incremental bucket-segmented index vs the
# from-scratch rebuild (at buffer capacity 4), and 0 allocs/batch on the
# steady-state DENSE sampling path. Writes to /tmp so the checked-in
# full-shape baseline is never clobbered.
bench-sampler:
	$(GO) run ./cmd/benchsampler -short -check -o /tmp/BENCH_sampler.json

# Short-mode end-to-end ingestion gate: export a seeded graph to raw
# TSV, preprocess it with the streaming ingester under a memory cap
# small enough to force a multi-run external sort, validate every
# checksum, then train pipelined COMET straight from the prepared
# directory. Hard floors: >=2 spill runs under the cap, and per-epoch
# losses plus the final checkpoint byte-identical to a serial session
# over the equivalent in-memory graph. Also runs the quantized-ingest
# differential: an fp16-prepared NC dataset must train bit-identically
# across worker counts, serve identically from disk-paged and in-memory
# stores, and land within 5% of the float32 loss. Same target as the CI
# ingest job, so CI and local runs gate one configuration.
bench-ingest:
	$(GO) run ./cmd/benchingest -short -check -o /tmp/BENCH_ingest.json

# Short-mode serving gate: prepare and briefly train NC and LP datasets,
# serve their checkpoints through internal/serve, and drive closed-loop
# clients at concurrency 1/16/64 against predict and top-k. Hard floors:
# served NC logits byte-identical to the evaluation forward, LP top-k
# byte-identical to the full-ranking ScoreAll kernel, concurrent results
# equal to single-request results, and sustained QPS above conservative
# floors. Observability gates ride along: /metrics must lint as
# Prometheus text with the serve/storage/snapshot families present, and
# a span-tracing server must hold >=98% of the untraced QPS. Same
# target as the CI serve job.
bench-serve:
	$(GO) run ./cmd/benchserve -short -check -o /tmp/BENCH_serve.json

# Race coverage focused on the fault-tolerance surface: the injector's
# own determinism/crash tests, the storage retry and evict write-back
# fault tests, serve resilience (shedding, deadlines, panic
# containment), and the crash-resume differential.
race-fault:
	$(GO) test -race ./internal/fault/
	$(GO) test -race -run 'Fault|Evict|Retry' ./internal/storage/
	$(GO) test -race -run 'Shed|Timeout|Panic|Reload' ./internal/serve/
	$(GO) test -race -run 'Crash|Resume|Journal' ./internal/ckpt/ ./internal/dataset/ ./marius/

# Short-mode chaos harness with hard gates: a prep killed mid-write must
# recover via -force to a byte-identical dataset, training under random
# transient/short IO must match the clean run bit for bit, a run killed
# at a random write count must Resume to the uninterrupted trajectory
# and checkpoint, an overloaded server must shed fast (503+Retry-After)
# and degrade/recover its health, and an injected dispatcher panic must
# be contained. Writes to /tmp so the checked-in full-size baseline is
# never clobbered.
bench-fault:
	$(GO) run ./cmd/benchfault -short -check -o /tmp/BENCH_fault.json

# Short-mode ranking-evaluation gate: time the streamed filtered-ranking
# protocol and the fused candidate-scoring kernel for every decoder
# (DistMult, ComplEx, TransE). Hard floors: MRR/Hits@k bitwise identical
# across worker counts, batch sizes and chunk widths; the fused scoring
# path bit-identical to the scalar RefScore reference; filtered MRR >=
# raw MRR; and throughput above conservative floors. Same target as the
# CI eval job. Writes to /tmp so the checked-in full-size baseline is
# never clobbered.
bench-eval:
	$(GO) run ./cmd/bencheval -short -check -o /tmp/BENCH_eval.json

# Refresh the checked-in full-shape baselines (commit the results).
bench-baseline:
	$(GO) run ./cmd/benchkernels -check -o BENCH_kernels.json
	$(GO) run ./cmd/benchpipeline -check -o BENCH_pipeline.json
	$(GO) run ./cmd/benchsampler -check -o BENCH_sampler.json
	$(GO) run ./cmd/benchingest -check -o BENCH_ingest.json
	$(GO) run ./cmd/benchserve -check -o BENCH_serve.json
	$(GO) run ./cmd/benchfault -check -o BENCH_fault.json
	$(GO) run ./cmd/bencheval -check -o BENCH_eval.json

# The full local gate: everything CI runs (test, race, race-pipeline,
# and every benchmark floor including the end-to-end ingest and serving
# paths).
check: build test race race-pipeline race-fault bench-kernels bench-pipeline bench-sampler bench-ingest bench-serve bench-fault bench-eval
