// Benchmarks regenerating every table and figure of the MariusGNN
// evaluation (paper §7) at reduced scale so the full suite completes in
// minutes. `go run ./cmd/benchtables` prints the same experiments at full
// benchmark scale with paper-style formatting. The -v output of each
// benchmark contains the measured rows; EXPERIMENTS.md records a full run.
package repro_test

import (
	"testing"

	"repro/internal/experiments"
)

// benchScale shrinks datasets so `go test -bench=.` stays fast; use
// cmd/benchtables for full-size runs.
const benchScale = experiments.Scale(0.15)

func BenchmarkTable1MemoryOverheads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1()
		if len(rows) != 6 {
			b.Fatal("expected six graphs")
		}
		if i == 0 {
			for _, r := range rows {
				b.Logf("%-16s edges %.0f GB, features %.0f GB, total %.0f GB", r.Name, r.EdgeGB, r.FeatGB, r.TotalGB)
			}
		}
	}
}

func BenchmarkTable3NodeClassification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3(benchScale, 2)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.Log(r)
			if r.System == "M-GNN Mem" && r.Dataset == "Papers" {
				b.ReportMetric(r.Epoch.Seconds(), "mgnn-mem-epoch-s")
				b.ReportMetric(r.Metric, "mgnn-mem-acc")
			}
			if r.System == "DGL/PyG-sim" && r.Dataset == "Papers" {
				b.ReportMetric(r.Epoch.Seconds(), "baseline-epoch-s")
			}
		}
	}
}

func BenchmarkTable4LinkPrediction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table4(benchScale, 2)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.Log(r)
			if r.System == "M-GNN Mem" && r.Dataset == "FB" {
				b.ReportMetric(r.Epoch.Seconds(), "mgnn-mem-epoch-s")
				b.ReportMetric(r.Metric, "mgnn-mem-mrr")
			}
		}
	}
}

func BenchmarkTable5GraphSageVsGAT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table5(benchScale, 2)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.Log(r)
		}
	}
}

func BenchmarkTable6DENSE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table6(benchScale, 4, 128, 3)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.Logf("layers=%d sample %v vs %v, compute %v vs %v, nodes %d vs %d",
				r.Layers, r.DenseSample, r.BaselineSample, r.DenseCompute, r.BaselineCompute,
				r.DenseNodes, r.BaselineNodes)
		}
		deepest := rows[len(rows)-1]
		b.ReportMetric(float64(deepest.BaselineSample)/float64(deepest.DenseSample), "sample-speedup")
		b.ReportMetric(float64(deepest.BaselineCompute)/float64(deepest.DenseCompute), "compute-speedup")
	}
}

func BenchmarkTable7NextDoor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table7(60_000, 14, 5, 128, 500_000)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.KHopOOM {
				b.Logf("layers=%d DENSE %v (%d entries) vs KHop OOM", r.Layers, r.DenseTime, r.DenseEntries)
			} else {
				b.Logf("layers=%d DENSE %v (%d entries) vs KHop %v (%d entries)",
					r.Layers, r.DenseTime, r.DenseEntries, r.KHopTime, r.KHopEntries)
			}
		}
	}
}

func BenchmarkFigure6aBiasVsAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Figure6a(benchScale, 2)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			b.Logf("%-6s p=%-3d l=%-3d bias=%.4f mrr=%.4f", p.Policy, p.P, p.L, p.Bias, p.MRR)
		}
	}
}

func BenchmarkFigure6bLogicalPartitions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		effs, err := experiments.Figure6b(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range effs {
			b.Logf("l=%-3d bias=%.4f subgraphs=%d loads=%d", e.L, e.Bias, e.NumSubgraphs, e.TotalLoads)
		}
	}
}

func BenchmarkFigure6cPhysicalPartitions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		effs, err := experiments.Figure6c(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range effs {
			b.Logf("p=%-3d bias=%.4f", e.P, e.Bias)
		}
	}
}

func BenchmarkFigure7TimeToAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Figure7(benchScale, 3)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			b.Logf("%-14s epoch %d: %6.2fs acc=%.4f", p.System, p.Epoch, p.Elapsed.Seconds(), p.Metric)
		}
	}
}

func BenchmarkFigure8AutoTuning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Figure8(benchScale, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			mark := ""
			if p.AutoTuned {
				mark = " <-- auto-tuned"
			}
			b.Logf("p=%-3d c=%-2d l=%-3d epoch=%6.2fs mrr=%.4f%s", p.P, p.C, p.L, p.Epoch.Seconds(), p.MRR, mark)
		}
	}
}

func BenchmarkTable8CometVsBeta(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table8(benchScale, 2)
		if err != nil {
			b.Fatal(err)
		}
		wins := 0
		for _, r := range rows {
			b.Logf("%-4s %-5s mem=%.4f comet=%.4f beta=%.4f epochs %.2fs vs %.2fs",
				r.Model, r.Dataset, r.MemMRR, r.CometMRR, r.BetaMRR,
				r.CometEpoch.Seconds(), r.BetaEpoch.Seconds())
			if r.CometMRR >= r.BetaMRR {
				wins++
			}
		}
		b.ReportMetric(float64(wins)/float64(len(rows)), "comet-win-rate")
	}
}

func BenchmarkSection73ExtremeScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.ExtremeScale(200_000, 800_000, 16)
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("%.0f edges/sec, train MRR %.4f, IO %.1f MB, extrapolated $%.0f/epoch",
			res.EdgesPerSec, res.TrainMRR, float64(res.IOBytes)/1e6, res.ExtrapolatedC)
		b.ReportMetric(res.EdgesPerSec, "edges/sec")
	}
}
